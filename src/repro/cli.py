"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig15 --scale 0.2
    python -m repro all --scale 0.2 --jobs 8
    python -m repro all --scale 1.0 --no-cache --json report.json
    python -m repro run ext-fleet --fleet-cells 100 --jobs 4 --json out.json

(``run <id>`` is an optional explicit form of the bare ``<id>``
invocation; the two are interchangeable.)

``--scale 1.0`` reproduces the paper-sized runs (30 000 subframes per
basestation for the scheduler experiments); smaller scales shrink the
sample counts proportionally for quick looks.

``--jobs N`` fans the work out over N processes: sweep-style
experiments (fig15, fig17, fig19, table2) decompose into independent
sweep points, everything else parallelizes across experiments; the
output is byte-identical to a serial run.  Results are cached on disk
(``--cache-dir``, default ``~/.cache/rtopex-repro`` or
``$RTOPEX_CACHE_DIR``) keyed by experiment, scale, seed, and a source
fingerprint, so warm reruns skip execution entirely; ``--no-cache``
disables this.  ``--json PATH`` exports run telemetry (per-unit wall
times, cache counters, failures) for CI tracking.

``--trace PATH`` records every scheduler run's microsecond timeline
(arrivals, per-core busy spans, migrations, idle gaps, deadline
verdicts) — by default as Chrome trace-event JSON loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``, or as line-delimited
JSON with ``--trace-format jsonl`` for programmatic analysis (see
:mod:`repro.analysis.tracestats`).  The file is *streamed*: events are
appended as the schedulers emit them, so trace memory stays O(1) in the
event count and a killed run leaves a loadable prefix behind (JSONL).
``--trace-kinds deadline,migration,gap`` filters at emit time to the
named kinds.  Tracing forces the result cache off (with a warning): a
cache-served unit executes no scheduler and would leave holes in the
timeline.

``--classes urllc:0.1,embb:0.6,mmtc:0.3`` selects the mixed-service
traffic mix for class-aware experiments (``ext_mixed``): each entry is
``<class>:<share>`` with shares summing to 1; the per-class packet
delay budgets and burst profiles come from the standard class table in
:mod:`repro.workload.classes`.

``--fleet-cells N`` / ``--nodes 8,12`` / ``--loads 0.8,1.0`` /
``--schedulers rt-opex,global`` / ``--placer greedy|opt|both``
parameterize the fleet placement sweep (``ext-fleet``): the fleet
size, the cores-per-node axis, the load-multiplier axis, the
per-node scheduler axis, and whether cells are placed by the greedy
first-fit-decreasing heuristic, the exact MILP baseline, or both (the
default, which also reports the greedy-vs-optimal node gap per grid
point).  Like ``--classes``, the flags are rejected on experiments that
do not declare the corresponding option.

``--profile`` wraps the run in cProfile and embeds the top-20
cumulative hotspots into the ``--json`` telemetry report — the quick
answer to "where did that run spend its time" without a separate
profiling harness.  It requires ``--jobs 1``: work executed in worker
processes never reaches the in-process profiler, and a silently
coordinator-only hotspot table would mislead.

``--sanitize`` runs the virtual-time sanitizer over every scheduler
run's event stream (see :mod:`repro.check.sanitizer`): core-track
overlap, time monotonicity, migration-batch conservation, span nesting,
and deadline-verdict consistency are validated online, and the first
violation aborts the run with a ``SanitizerError``.  It composes with
``--trace`` (the exported stream is exactly what gets validated) but
not with ``--trace-kinds`` — conservation needs the full stream — and,
like tracing, it forces the cache off: a cache-served unit executes no
scheduler, so there would be nothing to validate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.experiments import get_experiment, list_experiments
from repro.experiments.base import DEFAULT_SEED
from repro.runtime import ExperimentRunner, ExperimentResult, ResultCache, default_cache_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rtopex",
        description="RT-OPEX (CoNEXT 2016) reproduction: experiment runner",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'list', or the literal 'run'",
    )
    parser.add_argument(
        "experiment_id",
        nargs="?",
        default=None,
        help="experiment id when the first positional is 'run'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="sample-size scale; 1.0 = paper-sized runs (default 0.2)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="RNG seed")
    parser.add_argument(
        "--classes",
        default=None,
        metavar="SPEC",
        help=(
            "mixed-service class spec, e.g. 'urllc:0.1,embb:0.6,mmtc:0.3' "
            "(shares sum to 1); applies to experiments that declare the "
            "option (ext_mixed)"
        ),
    )
    parser.add_argument(
        "--fleet-cells",
        type=int,
        default=None,
        metavar="N",
        dest="fleet_cells",
        help=(
            "fleet size for the placement sweep (ext-fleet); applies to "
            "experiments that declare the option"
        ),
    )
    parser.add_argument(
        "--nodes",
        default=None,
        metavar="SPEC",
        help=(
            "cores-per-node axis for the placement sweep, e.g. '8,12' "
            "(ext-fleet only)"
        ),
    )
    parser.add_argument(
        "--loads",
        default=None,
        metavar="SPEC",
        help=(
            "load-multiplier axis for the placement sweep, e.g. "
            "'0.8,1.0' (ext-fleet only)"
        ),
    )
    parser.add_argument(
        "--schedulers",
        default=None,
        metavar="SPEC",
        help=(
            "scheduler axis for the placement sweep, e.g. "
            "'rt-opex,global' (ext-fleet only)"
        ),
    )
    parser.add_argument(
        "--placer",
        choices=("greedy", "opt", "both"),
        default=None,
        help=(
            "placement algorithm for the fleet sweep: greedy FFD, the "
            "MILP optimum, or both with the gap reported (default both; "
            "ext-fleet only)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; sweeps decompose into parallel units (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result-cache directory (default ~/.cache/rtopex-repro or $RTOPEX_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="write the run report (telemetry + cache counters) as JSON",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        dest="trace_path",
        help="record scheduler timelines and write a trace file (disables the cache)",
    )
    parser.add_argument(
        "--trace-format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="trace file format: Chrome/Perfetto JSON or line-delimited JSON (default chrome)",
    )
    parser.add_argument(
        "--trace-kinds",
        default=None,
        metavar="KINDS",
        help=(
            "comma-separated event kinds to record (e.g. "
            "'deadline,migration,gap'); 'migration' expands to the "
            "planned/executed/returned triple; default: everything"
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "validate every scheduler run's event stream online "
            "(virtual-time sanitizer); incompatible with --trace-kinds, "
            "disables the cache"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile the run with cProfile and put the top-20 cumulative "
            "hotspots in the --json report (requires --jobs 1: worker "
            "processes are invisible to an in-process profiler)"
        ),
    )
    return parser


def _print_listing(stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    for exp in list_experiments():
        print(f"{exp.experiment_id:8s}  {exp.title}", file=stream)


def _print_result(result: ExperimentResult) -> None:
    if result.error is not None:
        print(f"[{result.experiment_id} FAILED]", file=sys.stderr)
        print(result.error.rstrip(), file=sys.stderr)
        print(file=sys.stderr)
        return
    print(result.output)
    suffix = " (cached)" if result.cached else ""
    print(f"[{result.experiment_id} finished in {result.wall_s:.1f}s{suffix}]")
    print()


def _validate_classes(spec: str) -> None:
    from repro.workload.classes import parse_class_spec

    parse_class_spec(spec)


def _validate_fleet_cells(spec: str) -> None:
    from repro.experiments.ext_fleet import parse_fleet_cells

    parse_fleet_cells(spec)


def _validate_nodes(spec: str) -> None:
    from repro.experiments.ext_fleet import parse_nodes

    parse_nodes(spec)


def _validate_loads(spec: str) -> None:
    from repro.experiments.ext_fleet import parse_loads

    parse_loads(spec)


def _validate_schedulers(spec: str) -> None:
    from repro.experiments.ext_fleet import parse_schedulers

    parse_schedulers(spec)


def _validate_placer(spec: str) -> None:
    from repro.experiments.ext_fleet import parse_placer

    parse_placer(spec)


#: CLI flag -> (experiment option name, validator, hint for the
#: "not declared by this experiment" usage error).
_OPTION_FLAGS = (
    ("--classes", "classes", _validate_classes,
     "only class-aware experiments like ext_mixed do"),
    ("--fleet-cells", "fleet_cells", _validate_fleet_cells,
     "only the fleet placement sweep ext-fleet does"),
    ("--nodes", "nodes", _validate_nodes,
     "only the fleet placement sweep ext-fleet does"),
    ("--loads", "loads", _validate_loads,
     "only the fleet placement sweep ext-fleet does"),
    ("--schedulers", "schedulers", _validate_schedulers,
     "only the fleet placement sweep ext-fleet does"),
    ("--placer", "placer", _validate_placer,
     "only the fleet placement sweep ext-fleet does"),
)


def _gather_options(args) -> Dict[str, str]:
    """Collect option-style flags into the runner's options mapping.

    Raises ``ValueError`` with a printable message for an invalid value
    or a flag the selected experiment does not declare.
    """
    values = {
        "--classes": args.classes,
        "--fleet-cells": (
            None if args.fleet_cells is None else str(args.fleet_cells)
        ),
        "--nodes": args.nodes,
        "--loads": args.loads,
        "--schedulers": args.schedulers,
        "--placer": args.placer,
    }
    options: Dict[str, str] = {}
    for flag, option, validate, hint in _OPTION_FLAGS:
        value = values[flag]
        if value is None:
            continue
        try:
            validate(value)
        except ValueError as exc:
            raise ValueError(f"error: invalid {flag} spec: {exc}")
        if args.experiment != "all":
            declared = get_experiment(args.experiment).options
            if option not in declared:
                raise ValueError(
                    f"error: experiment {args.experiment!r} does not take "
                    f"{flag} ({hint})"
                )
        options[option] = value
    return options


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "run":
        if args.experiment_id is None:
            print(
                "error: 'run' needs an experiment id, e.g. 'run ext-fleet'",
                file=sys.stderr,
            )
            return 2
        args.experiment = args.experiment_id
    elif args.experiment_id is not None:
        print(
            f"error: unexpected extra argument {args.experiment_id!r} "
            "(only the 'run <id>' form takes two positionals)",
            file=sys.stderr,
        )
        return 2

    if args.experiment == "list":
        _print_listing()
        return 0

    if args.experiment == "all":
        ids = [e.experiment_id for e in list_experiments()]
    else:
        try:
            get_experiment(args.experiment)
        except KeyError:
            print(f"error: unknown experiment {args.experiment!r}", file=sys.stderr)
            print("known experiments:", file=sys.stderr)
            _print_listing(sys.stderr)
            return 2
        ids = [args.experiment]

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    if args.profile and args.jobs != 1:
        print(
            "error: --profile requires --jobs 1 (work executed in worker "
            "processes never reaches the in-process profiler, so the "
            "hotspot table would silently cover only the coordinator)",
            file=sys.stderr,
        )
        return 2

    try:
        options = _gather_options(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    trace_kinds = None
    if args.trace_kinds is not None:
        if not args.trace_path:
            print("error: --trace-kinds requires --trace PATH", file=sys.stderr)
            return 2
        if args.sanitize:
            print(
                "error: --sanitize is incompatible with --trace-kinds "
                "(migration-batch conservation needs the full event stream)",
                file=sys.stderr,
            )
            return 2
        from repro.obs import resolve_kinds

        try:
            trace_kinds = resolve_kinds(args.trace_kinds)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    observing = bool(args.trace_path) or args.sanitize
    cache = None
    cache_disabled_reason = None
    if observing and not args.no_cache:
        flag = "--trace" if args.trace_path else "--sanitize"
        cache_disabled_reason = (
            f"{flag} disables the result cache: a cache-served unit "
            "executes no scheduler and would leave holes in the timeline"
        )
        print(f"warning: {cache_disabled_reason}", file=sys.stderr)
    if not args.no_cache and not observing:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
        cache = ResultCache(cache_dir)

    runner = ExperimentRunner(jobs=args.jobs, cache=cache)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    def run_units():
        if profiler is not None:
            return profiler.runcall(
                runner.run, ids, scale=args.scale, seed=args.seed,
                on_result=_print_result, options=options,
            )
        return runner.run(
            ids, scale=args.scale, seed=args.seed, on_result=_print_result,
            options=options,
        )

    if observing:
        from repro.check import SanitizerError, SanitizingSink
        from repro.obs import Tracer, open_sink, tracing

        sink = open_sink(args.trace_path, args.trace_format) if args.trace_path else None
        sanitizing_sink = None
        if args.sanitize:
            sanitizing_sink = SanitizingSink(sink)
            sink = sanitizing_sink
        tracer = Tracer(kinds=trace_kinds, sink=sink)
        try:
            with tracing(tracer):
                results, report = run_units()
            sink.close()
        except SanitizerError as exc:
            sys.stderr.write(f"error: {exc}\n")
            return 1
        except BaseException:
            # Close the file handle on the error path too, but swallow
            # sanitizer end-of-run errors: the original failure wins.
            try:
                sink.close()
            except SanitizerError:
                pass
            raise
        if args.trace_path:
            report.trace_summary = {
                **tracer.summary(),
                "path": args.trace_path,
                "format": args.trace_format,
            }
        if sanitizing_sink is not None:
            report.sanitizer_summary = sanitizing_sink.summary()
        report.cache_disabled_reason = cache_disabled_reason
    else:
        results, report = run_units()

    if profiler is not None:
        from repro.runtime.telemetry import profile_summary

        report.profile = profile_summary(profiler)

    print(report.summary_text())
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(report.to_json_dict(), handle, indent=2)
        print(f"[runtime] report written to {args.json_path}")

    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())
