"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig15 --scale 0.2
    python -m repro all --scale 0.1 --seed 7

``--scale 1.0`` reproduces the paper-sized runs (30 000 subframes per
basestation for the scheduler experiments); smaller scales shrink the
sample counts proportionally for quick looks.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import list_experiments, run_experiment
from repro.experiments.base import DEFAULT_SEED


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rtopex",
        description="RT-OPEX (CoNEXT 2016) reproduction: experiment runner",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="sample-size scale; 1.0 = paper-sized runs (default 0.2)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="RNG seed")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiment == "list":
        for exp in list_experiments():
            print(f"{exp.experiment_id:8s}  {exp.title}")
        return 0

    ids = (
        [e.experiment_id for e in list_experiments()]
        if args.experiment == "all"
        else [args.experiment]
    )
    for experiment_id in ids:
        start = time.time()
        output = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        elapsed = time.time() - start
        print(output)
        print(f"[{experiment_id} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
