"""Correctness tooling for the reproduction: determinism lint + sanitizer.

Two halves, one goal — make the determinism and causality claims the
results rest on mechanically checkable:

* :mod:`repro.check.lint` — an AST lint (``python -m repro.check lint``)
  for the per-file hazard classes in :mod:`repro.check.rules` (wall
  clocks, global RNG, unordered iteration, microsecond unit mixing,
  mutable defaults).
* :mod:`repro.check.analyze` — whole-program flow passes
  (``python -m repro.check analyze``) over the project graph built by
  :mod:`repro.check.graph`: cache-key completeness, pool-shared state,
  flow-sensitive unit inference, and trace-emit conformance
  (RTX007–RTX010).
* :mod:`repro.check.sanitizer` — an online virtual-time sanitizer for
  the event streams the schedulers emit (``--sanitize`` on the CLI,
  ``RTOPEX_SANITIZE=1`` for tests).
"""

from repro.check.analyze import (
    analyze_modules,
    analyze_paths,
)
from repro.check.graph import ProjectGraph, build_graph
from repro.check.lint import (
    Finding,
    lint_file,
    lint_module,
    lint_modules,
    lint_paths,
    lint_source,
)
from repro.check.parse import (
    ParsedModule,
    iter_python_files,
    load_modules,
    parse_file,
    parse_source,
)
from repro.check.rules import (
    ANALYZE_RULE_IDS,
    LINT_RULE_IDS,
    RULES,
    RULES_BY_ID,
    Rule,
    explain,
    rule_table,
)
from repro.check.sanitizer import (
    ALL_CHECKS,
    SANITIZE_ENV_VAR,
    SanitizerError,
    SanitizingSink,
    SanitizingTrace,
    TraceSanitizer,
    checks_for_scheduler,
    sanitize_enabled,
)

__all__ = [
    "ALL_CHECKS",
    "ANALYZE_RULE_IDS",
    "Finding",
    "LINT_RULE_IDS",
    "ParsedModule",
    "ProjectGraph",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "SANITIZE_ENV_VAR",
    "SanitizerError",
    "SanitizingSink",
    "SanitizingTrace",
    "TraceSanitizer",
    "analyze_modules",
    "analyze_paths",
    "build_graph",
    "checks_for_scheduler",
    "explain",
    "iter_python_files",
    "lint_file",
    "lint_module",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "load_modules",
    "parse_file",
    "parse_source",
    "rule_table",
    "sanitize_enabled",
]
