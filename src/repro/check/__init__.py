"""Correctness tooling for the reproduction: determinism lint + sanitizer.

Two halves, one goal — make the determinism and causality claims the
results rest on mechanically checkable:

* :mod:`repro.check.lint` — an AST lint (``python -m repro.check lint``)
  for the hazard classes in :mod:`repro.check.rules` (wall clocks,
  global RNG, unordered iteration, microsecond unit mixing, mutable
  defaults).
* :mod:`repro.check.sanitizer` — an online virtual-time sanitizer for
  the event streams the schedulers emit (``--sanitize`` on the CLI,
  ``RTOPEX_SANITIZE=1`` for tests).
"""

from repro.check.lint import (
    Finding,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.check.rules import (
    RULES,
    RULES_BY_ID,
    Rule,
    explain,
    rule_table,
)
from repro.check.sanitizer import (
    ALL_CHECKS,
    SANITIZE_ENV_VAR,
    SanitizerError,
    SanitizingSink,
    SanitizingTrace,
    TraceSanitizer,
    checks_for_scheduler,
    sanitize_enabled,
)

__all__ = [
    "ALL_CHECKS",
    "Finding",
    "RULES",
    "RULES_BY_ID",
    "Rule",
    "SANITIZE_ENV_VAR",
    "SanitizerError",
    "SanitizingSink",
    "SanitizingTrace",
    "TraceSanitizer",
    "checks_for_scheduler",
    "explain",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_table",
    "sanitize_enabled",
]
