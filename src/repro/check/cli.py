"""``python -m repro.check`` — the correctness-tooling command line.

Subcommands::

    python -m repro.check lint [PATH ...]      # default: src/repro
    python -m repro.check analyze [PATH ...]   # whole-program flow passes
    python -m repro.check rules                # ruff-style rule table
    python -m repro.check rules --explain RTX003
    python -m repro.check replay trace.jsonl

``lint`` runs the per-file rules (RTX001–RTX006); ``analyze`` parses the
same tree once, builds the project graph, and runs the flow passes
(RTX007–RTX010).  Both accept ``--select``/``--ignore`` rule-id filters;
``analyze`` additionally supports ``--format json``, a committed
baseline file (``--baseline``, default ``.repro-check-baseline.json``
when present), and ``--write-baseline`` to accept the current findings.

``replay`` feeds a saved JSONL trace through the same
:class:`~repro.check.sanitizer.SanitizingSink` the live ``--sanitize``
path uses, so an archived trace can be re-validated offline — after a
sanitizer change, or to triage a trace produced on another machine —
without re-running the simulation that produced it.

Exit codes follow linter convention: 0 clean, 1 findings (lint/analyze)
or a sanitizer violation (replay), 2 usage or I/O errors (unreadable
path, syntax error in a linted file, unknown rule id, malformed trace
line).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.check.lint import lint_paths
from repro.check.rules import RULES_BY_ID, explain, rule_table


def _add_rule_filters(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--select",
        metavar="RTX0NN[,RTX0NN...]",
        action="append",
        default=None,
        help="only report these rule ids (repeatable, comma-separated)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RTX0NN[,RTX0NN...]",
        action="append",
        default=None,
        help="suppress these rule ids (repeatable, comma-separated)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Determinism lint, whole-program analysis, and rule table "
        "for the RT-OPEX repro.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_parser = sub.add_parser(
        "lint", help="lint files/trees for determinism hazards (RTX001-006)"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    _add_rule_filters(lint_parser)

    analyze_parser = sub.add_parser(
        "analyze",
        help="whole-program flow analysis (RTX007-010): cache keys, "
        "pool-shared state, unit flow, trace-emit conformance",
    )
    analyze_parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    _add_rule_filters(analyze_parser)
    analyze_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json emits the full machine-readable report)",
    )
    analyze_parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of accepted findings "
        "(default: .repro-check-baseline.json when it exists)",
    )
    analyze_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    analyze_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline file and exit 0",
    )

    rules_parser = sub.add_parser("rules", help="list the lint/analyze rules")
    rules_parser.add_argument(
        "--explain",
        metavar="RTX0NN",
        default=None,
        help="print one rule's full rationale instead of the table",
    )

    replay_parser = sub.add_parser(
        "replay",
        help="re-validate a saved JSONL trace through the virtual-time sanitizer",
    )
    replay_parser.add_argument("trace", help="JSONL trace file to validate")
    replay_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="tolerate one truncated final line (writer killed mid-run)",
    )
    return parser


def _parse_rule_ids(specs: Optional[List[str]]) -> Optional[Set[str]]:
    """Expand repeated/comma-separated ``--select``/``--ignore`` values."""
    if specs is None:
        return None
    out: Set[str] = set()
    for spec in specs:
        for part in spec.split(","):
            part = part.strip().upper()
            if not part:
                continue
            if part not in RULES_BY_ID:
                known = ", ".join(sorted(RULES_BY_ID))
                raise ValueError(f"unknown rule id {part!r} (known: {known})")
            out.add(part)
    return out or None


def _check_paths(paths: Sequence[str]) -> Optional[int]:
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro.check: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    return None


def _run_lint(
    paths: Sequence[str],
    select: Optional[List[str]],
    ignore: Optional[List[str]],
) -> int:
    bad = _check_paths(paths)
    if bad is not None:
        return bad
    try:
        select_ids = _parse_rule_ids(select)
        ignore_ids = _parse_rule_ids(ignore)
    except ValueError as exc:
        print(f"repro.check: {exc}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths, select=select_ids, ignore=ignore_ids)
    except SyntaxError as exc:
        print(f"repro.check: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro.check: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _run_analyze(args: argparse.Namespace) -> int:
    # Imported here so plain `lint` never pays for graph construction.
    from repro.check.analyze import (
        DEFAULT_BASELINE,
        analyze_paths,
        load_baseline,
        report_json,
        split_by_baseline,
        write_baseline,
    )

    bad = _check_paths(args.paths)
    if bad is not None:
        return bad
    try:
        select_ids = _parse_rule_ids(args.select)
        ignore_ids = _parse_rule_ids(args.ignore)
    except ValueError as exc:
        print(f"repro.check: {exc}", file=sys.stderr)
        return 2
    try:
        findings = analyze_paths(args.paths, select=select_ids, ignore=ignore_ids)
    except SyntaxError as exc:
        print(f"repro.check: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2

    baseline_path: Optional[str] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = args.baseline
        elif Path(DEFAULT_BASELINE).is_file():
            baseline_path = DEFAULT_BASELINE

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(target, findings)
        print(
            f"repro.check: wrote {len(findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    entries = []
    if baseline_path is not None:
        try:
            entries = load_baseline(baseline_path)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"repro.check: cannot read baseline {baseline_path}: {exc}",
                file=sys.stderr,
            )
            return 2
    new, baselined, stale = split_by_baseline(findings, entries)

    if args.format == "json":
        print(
            json.dumps(
                report_json(new, baselined, stale, baseline_path),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in new:
            print(finding.render())
        if baselined:
            print(
                f"repro.check: {len(baselined)} baselined finding(s) suppressed "
                f"({baseline_path})",
                file=sys.stderr,
            )
        if stale:
            print(
                f"repro.check: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — "
                "regenerate with --write-baseline)",
                file=sys.stderr,
            )
    if new:
        print(f"repro.check: {len(new)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _run_replay(trace: str, allow_partial: bool) -> int:
    # Imported here so `repro.check lint` stays usable without the
    # observability stack (and numpy) importable.
    from repro.check.sanitizer import SanitizerError, SanitizingSink
    from repro.obs.events import TraceEvent
    from repro.obs.export import iter_jsonl_lines
    from repro.obs.trace import RunTrace

    trace_path = Path(trace)
    if not trace_path.is_file():
        print(f"repro.check: no such trace: {trace}", file=sys.stderr)
        return 2
    sink = SanitizingSink()
    # Header carriers only — events are validated as they stream, never
    # buffered, so replay memory is O(runs + cores) like the live path.
    runs: List[RunTrace] = []
    try:
        for payload in iter_jsonl_lines(trace_path, allow_partial=allow_partial):
            kind = payload.get("type")
            if kind == "run":
                run = RunTrace(
                    str(payload["label"]),
                    scheduler=str(payload.get("scheduler", "")),
                    meta=dict(payload.get("meta", {})),
                )
                runs.append(run)
                sink.begin_run(run)
            elif kind == "event":
                if not runs:
                    raise ValueError("event line before any run header")
                index = int(payload.get("run", len(runs) - 1))
                if not 0 <= index < len(runs):
                    raise ValueError(f"event references unknown run {index}")
                sink.event(runs[index], TraceEvent.from_dict(payload))
            else:
                raise ValueError(f"unknown line type {payload.get('type')!r}")
        sink.close()
    except SanitizerError as exc:
        print(f"repro.check: {exc}", file=sys.stderr)
        return 1
    except (KeyError, TypeError, ValueError) as exc:
        print(f"repro.check: {trace}: malformed trace: {exc}", file=sys.stderr)
        return 2
    summary = sink.summary()
    print(
        f"replay ok: {summary['runs']} run(s), "
        f"{summary['events_checked']} event(s) checked, "
        f"{summary['batches_closed']} migration batch(es) closed"
    )
    return 0


def _run_rules(explain_id: Optional[str]) -> int:
    if explain_id is None:
        print(rule_table())
        return 0
    try:
        print(explain(explain_id))
    except KeyError as exc:
        print(f"repro.check: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args.paths, args.select, args.ignore)
    if args.command == "analyze":
        return _run_analyze(args)
    if args.command == "replay":
        return _run_replay(args.trace, args.allow_partial)
    return _run_rules(args.explain)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
