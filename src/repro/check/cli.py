"""``python -m repro.check`` — the correctness-tooling command line.

Subcommands::

    python -m repro.check lint [PATH ...]   # default: src/repro
    python -m repro.check rules             # ruff-style rule table
    python -m repro.check rules --explain RTX003
    python -m repro.check replay trace.jsonl

``replay`` feeds a saved JSONL trace through the same
:class:`~repro.check.sanitizer.SanitizingSink` the live ``--sanitize``
path uses, so an archived trace can be re-validated offline — after a
sanitizer change, or to triage a trace produced on another machine —
without re-running the simulation that produced it.

Exit codes follow linter convention: 0 clean, 1 findings (lint) or a
sanitizer violation (replay), 2 usage or I/O errors (unreadable path,
syntax error in a linted file, malformed trace line).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.check.lint import lint_paths
from repro.check.rules import explain, rule_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Determinism lint and rule table for the RT-OPEX repro.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_parser = sub.add_parser(
        "lint", help="lint files/trees for determinism hazards (RTX0NN rules)"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )

    rules_parser = sub.add_parser("rules", help="list the lint rules")
    rules_parser.add_argument(
        "--explain",
        metavar="RTX0NN",
        default=None,
        help="print one rule's full rationale instead of the table",
    )

    replay_parser = sub.add_parser(
        "replay",
        help="re-validate a saved JSONL trace through the virtual-time sanitizer",
    )
    replay_parser.add_argument("trace", help="JSONL trace file to validate")
    replay_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="tolerate one truncated final line (writer killed mid-run)",
    )
    return parser


def _run_lint(paths: Sequence[str]) -> int:
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro.check: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths)
    except SyntaxError as exc:
        print(f"repro.check: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro.check: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _run_replay(trace: str, allow_partial: bool) -> int:
    # Imported here so `repro.check lint` stays usable without the
    # observability stack (and numpy) importable.
    from repro.check.sanitizer import SanitizerError, SanitizingSink
    from repro.obs.events import TraceEvent
    from repro.obs.export import iter_jsonl_lines
    from repro.obs.trace import RunTrace

    trace_path = Path(trace)
    if not trace_path.is_file():
        print(f"repro.check: no such trace: {trace}", file=sys.stderr)
        return 2
    sink = SanitizingSink()
    # Header carriers only — events are validated as they stream, never
    # buffered, so replay memory is O(runs + cores) like the live path.
    runs: List[RunTrace] = []
    try:
        for payload in iter_jsonl_lines(trace_path, allow_partial=allow_partial):
            kind = payload.get("type")
            if kind == "run":
                run = RunTrace(
                    str(payload["label"]),
                    scheduler=str(payload.get("scheduler", "")),
                    meta=dict(payload.get("meta", {})),
                )
                runs.append(run)
                sink.begin_run(run)
            elif kind == "event":
                if not runs:
                    raise ValueError("event line before any run header")
                index = int(payload.get("run", len(runs) - 1))
                if not 0 <= index < len(runs):
                    raise ValueError(f"event references unknown run {index}")
                sink.event(runs[index], TraceEvent.from_dict(payload))
            else:
                raise ValueError(f"unknown line type {payload.get('type')!r}")
        sink.close()
    except SanitizerError as exc:
        print(f"repro.check: {exc}", file=sys.stderr)
        return 1
    except (KeyError, TypeError, ValueError) as exc:
        print(f"repro.check: {trace}: malformed trace: {exc}", file=sys.stderr)
        return 2
    summary = sink.summary()
    print(
        f"replay ok: {summary['runs']} run(s), "
        f"{summary['events_checked']} event(s) checked, "
        f"{summary['batches_closed']} migration batch(es) closed"
    )
    return 0


def _run_rules(explain_id: Optional[str]) -> int:
    if explain_id is None:
        print(rule_table())
        return 0
    try:
        print(explain(explain_id))
    except KeyError as exc:
        print(f"repro.check: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args.paths)
    if args.command == "replay":
        return _run_replay(args.trace, args.allow_partial)
    return _run_rules(args.explain)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
