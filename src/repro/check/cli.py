"""``python -m repro.check`` — the correctness-tooling command line.

Subcommands::

    python -m repro.check lint [PATH ...]   # default: src/repro
    python -m repro.check rules             # ruff-style rule table
    python -m repro.check rules --explain RTX003

Exit codes follow linter convention: 0 clean, 1 findings, 2 usage or
I/O errors (unreadable path, syntax error in a linted file).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.check.lint import lint_paths
from repro.check.rules import explain, rule_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Determinism lint and rule table for the RT-OPEX repro.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint_parser = sub.add_parser(
        "lint", help="lint files/trees for determinism hazards (RTX0NN rules)"
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )

    rules_parser = sub.add_parser("rules", help="list the lint rules")
    rules_parser.add_argument(
        "--explain",
        metavar="RTX0NN",
        default=None,
        help="print one rule's full rationale instead of the table",
    )
    return parser


def _run_lint(paths: Sequence[str]) -> int:
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro.check: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths)
    except SyntaxError as exc:
        print(f"repro.check: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro.check: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _run_rules(explain_id: Optional[str]) -> int:
    if explain_id is None:
        print(rule_table())
        return 0
    try:
        print(explain(explain_id))
    except KeyError as exc:
        print(f"repro.check: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return _run_lint(args.paths)
    return _run_rules(args.explain)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
