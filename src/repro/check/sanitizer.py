"""Virtual-time sanitizer: a TSAN-analogue for the discrete-event runs.

The schedulers emit their timelines as typed events (:mod:`repro.obs`);
this module validates those streams *online* — event by event, with
O(cores) state — against the invariants a causally sound single-worker-
per-core schedule must hold:

``overlap``
    No two busy spans (``task``/``migration_executed``) overlap on the
    same core track: each core is one worker.
``monotone``
    Within a core track, each event kind's timestamps never regress.
    (``migration_returned`` is exempt everywhere: batches on different
    helpers legitimately complete out of order yet are collected in
    ship order; ``subtask`` ordering is covered by ``nesting``.)
``nesting``
    A ``subtask`` span lies inside the most recent
    ``migration_executed`` span on its core, and successive subtasks of
    a batch do not overlap.
``conservation``
    Every batch id opened by a ``migration_planned`` event is closed by
    exactly one ``migration_executed`` and exactly one
    ``migration_returned``; at end of run nothing dangles.
``nonnegative``
    Span durations — gaps in particular — are never negative.
``verdict``
    A ``deadline`` verdict is never issued before the core's last busy
    span has ended: the verdict timestamps agree with the spans.

Violations raise :class:`SanitizerError` carrying the offending events.

Two adapters fit the two collection modes: :class:`SanitizingTrace` is a
:class:`~repro.obs.trace.RunTrace` that validates instead of buffering
(what ``run_scheduler`` attaches under ``RTOPEX_SANITIZE=1``), and
:class:`SanitizingSink` wraps a streaming sink so ``--sanitize`` on the
CLI validates exactly the bytes being exported.

The baseline schedulers emit plan-time timelines with known, documented
reorderings; :func:`checks_for_scheduler` relaxes exactly those checks
(and nothing else) per scheduler — see the profile table there.
"""

from __future__ import annotations

import math
import os
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.obs.events import (
    BUSY_KINDS,
    DEADLINE,
    GAP,
    MIGRATION_EXECUTED,
    MIGRATION_PLANNED,
    MIGRATION_RETURNED,
    SUBTASK,
    TraceEvent,
)
from repro.obs.trace import RunTrace, TraceSink

#: Environment switch: ``RTOPEX_SANITIZE=1`` makes every
#: ``run_scheduler`` invocation validate its own event stream.
SANITIZE_ENV_VAR = "RTOPEX_SANITIZE"

#: All sanitizer checks, by name.
ALL_CHECKS: FrozenSet[str] = frozenset(
    {"overlap", "monotone", "nesting", "conservation", "nonnegative", "verdict"}
)

#: Matching tolerance, mirroring the offline overlap detector
#: (:data:`repro.analysis.tracestats._OVERLAP_EPS_US`): well under a
#: nanosecond of virtual time.
EPS_US = 1e-6

#: Kinds exempt from the per-track monotonicity check in every profile.
#: ``migration_returned``: the owner collects batches in ship order, not
#: completion order.  ``subtask``: ordering is enforced (more tightly)
#: by the nesting check, batch by batch.
_ALWAYS_UNORDERED: FrozenSet[str] = frozenset({MIGRATION_RETURNED, SUBTASK})


def sanitize_enabled(environ: Optional[Mapping[str, str]] = None) -> bool:
    """True when ``RTOPEX_SANITIZE`` requests sanitized runs."""
    env = os.environ if environ is None else environ
    value = env.get(SANITIZE_ENV_VAR, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def checks_for_scheduler(scheduler: str) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """``(checks, extra_unordered_kinds)`` profile for a scheduler's trace.

    The three main schedulers (partitioned, global, rt-opex) emit their
    events in causal order and get the full check set.  The plan-level
    baselines reorder two instant kinds by construction, so exactly
    those are relaxed:

    * **pran** plans a whole subframe boundary, then emits every job's
      ``deadline`` verdict after the batch executes — verdicts of jobs
      sharing a boundary are not sorted by finish time, and a verdict
      can predate pool-core spans of *other* jobs in the batch.
    * **cloudiq** replays the admitted jobs through the partitioned
      scheduler first and only then emits the admission-rejected
      ``arrival``/``deadline`` instants, which carry early timestamps.
    """
    name = scheduler.lower()
    if name == "pran":
        return ALL_CHECKS - {"verdict"}, frozenset({DEADLINE})
    if name == "cloudiq":
        return ALL_CHECKS - {"verdict"}, frozenset({"arrival", DEADLINE})
    return ALL_CHECKS, frozenset()


def _render_event(event: TraceEvent) -> str:
    parts = [f"{event.kind} core={event.core} ts={event.ts_us:.6f}"]
    if event.dur_us:
        parts.append(f"dur={event.dur_us:.6f}")
    if event.name:
        parts.append(f"name={event.name!r}")
    if event.bs_id >= 0:
        parts.append(f"bs={event.bs_id}")
    if event.sf_index >= 0:
        parts.append(f"sf={event.sf_index}")
    if event.args:
        parts.append(f"args={dict(event.args)!r}")
    return "<" + " ".join(parts) + ">"


class SanitizerError(RuntimeError):
    """A trace invariant was violated.

    Attributes
    ----------
    check:
        The failed check's name (``overlap``, ``monotone``, ...).
    events:
        The offending :class:`TraceEvent` objects, newest last.
    run_label:
        Label of the run being validated (empty for bare streams).
    """

    def __init__(
        self,
        check: str,
        message: str,
        events: Sequence[TraceEvent] = (),
        run_label: str = "",
    ):
        self.check = check
        self.events: Tuple[TraceEvent, ...] = tuple(events)
        self.run_label = run_label
        detail = "; ".join(_render_event(e) for e in self.events)
        where = f" [run {run_label!r}]" if run_label else ""
        super().__init__(
            f"sanitizer check '{check}' failed{where}: {message}"
            + (f" — events: {detail}" if detail else "")
        )


class TraceSanitizer:
    """Online validator for one run's event stream.

    Feed events through :meth:`observe` in emission order, then call
    :meth:`finish` once the run is complete (dangling migration batches
    are only detectable at the end).  State is O(cores): per-core
    last-timestamp/last-span bookkeeping plus the currently *open*
    migration batches (bounded by the helper-core count).
    """

    def __init__(
        self,
        checks: FrozenSet[str] = ALL_CHECKS,
        unordered_kinds: FrozenSet[str] = frozenset(),
        run_label: str = "",
    ):
        unknown = checks - ALL_CHECKS
        if unknown:
            raise ValueError(f"unknown sanitizer checks: {sorted(unknown)}")
        self.checks = checks
        self.unordered_kinds = _ALWAYS_UNORDERED | unordered_kinds
        self.run_label = run_label
        self.events_checked = 0
        self.batches_closed = 0
        # Per-(core, kind) last timestamp (monotone check).
        self._last_ts: Dict[Tuple[int, str], TraceEvent] = {}
        # Per-core last busy span (overlap + verdict checks).
        self._last_busy: Dict[int, TraceEvent] = {}
        # Per-core current migration batch span + last subtask (nesting).
        self._batch_span: Dict[int, TraceEvent] = {}
        self._last_subtask: Dict[int, TraceEvent] = {}
        # Open migration batches: id -> {"planned": ev, "executed": ev|None}.
        self._open_batches: Dict[int, Dict[str, Optional[TraceEvent]]] = {}
        self._finished = False

    # -- error helper --------------------------------------------------------

    def _fail(self, check: str, message: str, events: Sequence[TraceEvent]) -> None:
        raise SanitizerError(check, message, events, run_label=self.run_label)

    # -- the online checks ---------------------------------------------------

    def observe(self, event: TraceEvent) -> None:
        """Validate one event against the enabled checks."""
        self.events_checked += 1
        if "nonnegative" in self.checks:
            self._check_nonnegative(event)
        if "monotone" in self.checks:
            self._check_monotone(event)
        if "overlap" in self.checks and event.kind in BUSY_KINDS:
            self._check_overlap(event)
        if "nesting" in self.checks and event.kind == SUBTASK:
            self._check_nesting(event)
        if "verdict" in self.checks and event.kind == DEADLINE:
            self._check_verdict(event)
        if "conservation" in self.checks:
            self._track_conservation(event)
        # State updates last, so a failing event reports pre-event state.
        if event.kind in BUSY_KINDS:
            self._last_busy[event.core] = event
        if event.kind == MIGRATION_EXECUTED:
            self._batch_span[event.core] = event
            self._last_subtask.pop(event.core, None)
        elif event.kind == SUBTASK:
            self._last_subtask[event.core] = event
        if event.kind not in self.unordered_kinds:
            self._last_ts[(event.core, event.kind)] = event

    def _check_nonnegative(self, event: TraceEvent) -> None:
        if event.dur_us < 0 or (event.kind == GAP and event.dur_us < 0):
            self._fail(
                "nonnegative",
                f"{event.kind} span has negative duration {event.dur_us}",
                [event],
            )
        if not math.isfinite(event.ts_us) or not math.isfinite(event.dur_us):
            self._fail(
                "nonnegative",
                f"{event.kind} carries a non-finite timestamp/duration",
                [event],
            )

    def _check_monotone(self, event: TraceEvent) -> None:
        if event.kind in self.unordered_kinds:
            return
        previous = self._last_ts.get((event.core, event.kind))
        if previous is not None and event.ts_us < previous.ts_us - EPS_US:
            self._fail(
                "monotone",
                f"virtual time regressed on core {event.core} for kind "
                f"'{event.kind}': {event.ts_us} after {previous.ts_us}",
                [previous, event],
            )

    def _check_overlap(self, event: TraceEvent) -> None:
        previous = self._last_busy.get(event.core)
        if previous is not None and event.ts_us < previous.end_us - EPS_US:
            self._fail(
                "overlap",
                f"busy spans overlap on core {event.core}: new span starts "
                f"at {event.ts_us} before previous ends at {previous.end_us}",
                [previous, event],
            )

    def _check_nesting(self, event: TraceEvent) -> None:
        batch = self._batch_span.get(event.core)
        if batch is None:
            self._fail(
                "nesting",
                f"subtask on core {event.core} outside any "
                "migration_executed span",
                [event],
            )
            return
        if event.ts_us < batch.ts_us - EPS_US or event.end_us > batch.end_us + EPS_US:
            self._fail(
                "nesting",
                f"subtask [{event.ts_us}, {event.end_us}] escapes its batch "
                f"span [{batch.ts_us}, {batch.end_us}] on core {event.core}",
                [batch, event],
            )
        previous = self._last_subtask.get(event.core)
        if previous is not None and event.ts_us < previous.end_us - EPS_US:
            self._fail(
                "nesting",
                f"subtasks overlap within a batch on core {event.core}",
                [previous, event],
            )

    def _check_verdict(self, event: TraceEvent) -> None:
        busy = self._last_busy.get(event.core)
        if busy is not None and event.ts_us < busy.end_us - EPS_US:
            self._fail(
                "verdict",
                f"deadline verdict at {event.ts_us} on core {event.core} "
                f"predates the end of its last busy span ({busy.end_us})",
                [busy, event],
            )

    def _track_conservation(self, event: TraceEvent) -> None:
        if event.kind == MIGRATION_PLANNED:
            batches = event.args.get("batches")
            if not isinstance(batches, (list, tuple)):
                return  # legacy traces without batch ids: nothing to track
            for batch in batches:
                batch_id = int(batch)
                if batch_id in self._open_batches:
                    self._fail(
                        "conservation",
                        f"migration batch {batch_id} planned twice",
                        [e for e in (self._open_batches[batch_id]["planned"],) if e]
                        + [event],
                    )
                self._open_batches[batch_id] = {"planned": event, "executed": None}
        elif event.kind == MIGRATION_EXECUTED:
            batch = event.args.get("batch")
            if not isinstance(batch, int):
                return
            entry = self._open_batches.get(batch)
            if entry is None:
                self._fail(
                    "conservation",
                    f"migration_executed for batch {batch} that was never "
                    "planned (or was already closed)",
                    [event],
                )
                return
            if entry["executed"] is not None:
                self._fail(
                    "conservation",
                    f"migration batch {batch} executed twice",
                    [e for e in (entry["executed"],) if e] + [event],
                )
            entry["executed"] = event
        elif event.kind == MIGRATION_RETURNED:
            batch = event.args.get("batch")
            if not isinstance(batch, int):
                return
            entry = self._open_batches.pop(batch, None)
            if entry is None:
                self._fail(
                    "conservation",
                    f"migration_returned for batch {batch} that was never "
                    "planned (or was already closed)",
                    [event],
                )
                return
            if entry["executed"] is None:
                self._fail(
                    "conservation",
                    f"migration batch {batch} returned without ever "
                    "executing",
                    [e for e in (entry["planned"],) if e] + [event],
                )
            self.batches_closed += 1

    # -- end of run ----------------------------------------------------------

    def finish(self) -> None:
        """End-of-run validation: no migration batch may dangle."""
        if self._finished:
            return
        self._finished = True
        if "conservation" in self.checks and self._open_batches:
            dangling = sorted(self._open_batches)
            events = [
                e
                for batch_id in dangling
                for e in (self._open_batches[batch_id]["planned"],)
                if e is not None
            ]
            self._fail(
                "conservation",
                f"{len(dangling)} migration batch(es) never closed: "
                f"{dangling[:8]}{'...' if len(dangling) > 8 else ''}",
                events,
            )

    def report(self) -> Dict[str, object]:
        """Attestation counters for telemetry/tests."""
        return {
            "events_checked": self.events_checked,
            "batches_closed": self.batches_closed,
            "checks": sorted(self.checks),
            "run_label": self.run_label,
        }


class SanitizingTrace(RunTrace):
    """A :class:`RunTrace` that validates events instead of buffering.

    ``run_scheduler`` attaches one (possibly teed behind the real trace)
    when sanitizing is enabled; the scheduler sees an ordinary trace
    object, every emission is checked online, and nothing is stored —
    the zero-buffer property that keeps sanitized paper-scale runs in
    O(cores) memory.
    """

    __slots__ = ("sanitizer",)

    def __init__(
        self,
        label: str,
        scheduler: str = "",
        meta: Optional[Mapping[str, object]] = None,
    ):
        super().__init__(label, scheduler=scheduler, meta=meta)
        checks, unordered = checks_for_scheduler(scheduler or label)
        self.sanitizer = TraceSanitizer(checks, unordered, run_label=label)

    def emit(self, event: TraceEvent) -> None:
        self.sanitizer.observe(event)

    def finish(self) -> None:
        self.sanitizer.finish()

    def report(self) -> Dict[str, object]:
        return self.sanitizer.report()


class SanitizingSink:
    """Streaming-sink wrapper: validate every event, then forward it.

    Layered over a :class:`~repro.obs.export.ChromeTraceSink`/
    :class:`~repro.obs.export.JsonlTraceSink` (or over nothing, for
    ``--sanitize`` without ``--trace``), so the CLI validates exactly
    the stream it exports.  One :class:`TraceSanitizer` per run, with
    the per-scheduler check profile; :meth:`close` finishes every run
    (dangling-batch detection) before closing the inner sink.
    """

    def __init__(self, inner: Optional[TraceSink] = None):
        self.inner = inner
        self._sanitizers: Dict[int, TraceSanitizer] = {}
        self._reports: List[Dict[str, object]] = []

    def begin_run(self, run: RunTrace) -> None:
        checks, unordered = checks_for_scheduler(run.scheduler)
        self._sanitizers[id(run)] = TraceSanitizer(
            checks, unordered, run_label=run.label
        )
        if self.inner is not None:
            self.inner.begin_run(run)

    def event(self, run: RunTrace, event: TraceEvent) -> None:
        self._sanitizers[id(run)].observe(event)
        if self.inner is not None:
            self.inner.event(run, event)

    def close(self) -> None:
        try:
            # Insertion order == begin_run order: deterministic.
            for sanitizer in list(self._sanitizers.values()):
                sanitizer.finish()
                self._reports.append(sanitizer.report())
        finally:
            if self.inner is not None:
                self.inner.close()

    def summary(self) -> Dict[str, object]:
        """Roll-up across runs (valid after :meth:`close`)."""
        reports = self._reports or [
            sanitizer.report() for sanitizer in self._sanitizers.values()
        ]
        return {
            "runs": len(reports),
            "events_checked": sum(int(r["events_checked"]) for r in reports),
            "batches_closed": sum(int(r["batches_closed"]) for r in reports),
        }
