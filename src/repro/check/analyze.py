"""Whole-program flow analysis: ``python -m repro.check analyze``.

Four passes over the :mod:`repro.check.graph` project graph, each one a
rule (RTX007–RTX010) targeting a *cross-module* determinism hazard the
per-file lint cannot see:

* **RTX007 cache-key completeness** — every option an experiment
  declares (``register(options=...)`` / the CLI ``_OPTION_FLAGS``
  table) must flow into ``WorkUnit.params``, because params are the
  result-cache key: an option that changes results without changing the
  key serves stale cache hits.  Traced by tainting reads of the
  ``options`` mapping inside ``SweepSpec.units`` and following
  assignments, loops, and same-module helper calls into the params
  dict.
* **RTX008 parallel shared-state** — module-level mutables (and
  default-argument aliases) mutated inside any function reachable from
  a process-pool submission.  Reachability includes dynamic dispatch
  through the experiment registry (drivers, sweep callbacks), so a
  driver that memoizes into a module dict is caught even though no
  textual call chain reaches it.
* **RTX009 unit flow** — flow-sensitive time-unit inference: µs/ms/s
  "types" seeded from name suffixes propagate through assignments,
  arithmetic (with explicit 1e3/1e6 conversions recognized), and
  resolved call/return boundaries; mixing two different known units in
  one expression, assignment, argument, or return is a finding.
* **RTX010 trace-emit conformance** — every trace emit site is checked
  against the typed vocabulary in :mod:`repro.obs.events`: event kinds
  must be members of ``EVENT_KINDS`` and ``args`` keys members of the
  per-kind ``EVENT_ARG_FIELDS`` set; emit-helper calls must use the
  helper's real signature.

Findings render exactly like lint findings (``path:line:col RTXnnn``),
honour inline ``# repro-check: allow`` waivers, and can be suppressed
via a committed baseline file (``--baseline``, default
``.repro-check-baseline.json``) so the gate is adoptable on a tree with
known accepted findings.  ``--format json`` emits a machine-readable
report for CI artifacts.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.check.graph import (
    FunctionInfo,
    ProjectGraph,
    build_graph,
    dotted_name,
)
from repro.check.lint import Finding, apply_waivers
from repro.check.parse import ParsedModule, PathLike, load_modules
from repro.check.rules import (
    CACHE_KEY_COMPLETENESS,
    PARALLEL_SHARED_STATE,
    TRACE_EMIT_CONFORMANCE,
    UNIT_FLOW,
)

#: Default committed baseline file, looked up relative to the cwd.
DEFAULT_BASELINE = ".repro-check-baseline.json"

# -- shared context -----------------------------------------------------------


@dataclass
class AnalysisContext:
    modules: List[ParsedModule]
    graph: ProjectGraph
    findings: List[Finding] = field(default_factory=list)

    def module_of(self, name: str) -> Optional[ParsedModule]:
        return self.graph.modules.get(name)

    def flag(self, module: ParsedModule, node: ast.AST, rule, message: str) -> None:
        self.findings.append(
            Finding(
                path=module.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )


# -- RTX007: cache-key completeness ------------------------------------------


class _OptionTaint:
    """Forward taint of ``options.get("name")`` reads through one
    function (and same-module helpers it passes tainted values to)."""

    def __init__(self, ctx: AnalysisContext, graph: ProjectGraph):
        self.ctx = ctx
        self.graph = graph
        #: option names whose taint reached a WorkUnit params value.
        self.flowed: Set[str] = set()

    def run(self, info: FunctionInfo, options_param: str) -> Set[str]:
        seeds = {options_param: frozenset({"*options*"})}
        self._analyze(info, seeds, depth=0, seen=set())
        return self.flowed

    # The taint domain: each variable maps to the set of option names it
    # (transitively) derives from.  ``"*options*"`` marks the mapping
    # itself, whose .get()/[] reads mint concrete option taints.

    def _analyze(
        self,
        info: FunctionInfo,
        param_taint: Mapping[str, FrozenSet[str]],
        depth: int,
        seen: Set[str],
    ) -> None:
        if depth > 5 or info.qualname in seen:
            return
        seen = seen | {info.qualname}
        env: Dict[str, FrozenSet[str]] = dict(param_taint)
        body = getattr(info.node, "body", [])
        # Two passes reach taint through loops (later stmts feeding
        # earlier loop targets); the domain is finite so this converges.
        for _ in range(2):
            for stmt in body:
                self._stmt(stmt, env, info, depth, seen)

    def _stmt(self, stmt, env, info, depth, seen) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value, env, info, depth, seen)
            for target in stmt.targets:
                self._bind(target, taint, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._expr(stmt.value, env, info, depth, seen), env)
        elif isinstance(stmt, ast.AugAssign):
            taint = self._expr(stmt.value, env, info, depth, seen)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = env.get(stmt.target.id, frozenset()) | taint
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._expr(stmt.iter, env, info, depth, seen), env)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub, env, info, depth, seen)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, env, info, depth, seen)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub, env, info, depth, seen)
        elif isinstance(stmt, ast.With):
            for sub in stmt.body:
                self._stmt(sub, env, info, depth, seen)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(sub, env, info, depth, seen)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub, env, info, depth, seen)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self._expr(stmt.value, env, info, depth, seen)

    def _bind(self, target: ast.expr, taint: FrozenSet[str], env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint, env)

    def _expr(self, node: ast.expr, env, info, depth, seen) -> FrozenSet[str]:
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset())
        if isinstance(node, ast.Subscript):
            base = self._expr(node.value, env, info, depth, seen)
            if "*options*" in base:
                key = node.slice
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    return frozenset({key.value})
            index = (
                self._expr(node.slice, env, info, depth, seen)
                if isinstance(node.slice, ast.expr) else frozenset()
            )
            return base | index
        if isinstance(node, ast.Call):
            return self._call(node, env, info, depth, seen)
        if isinstance(node, ast.Attribute):
            return self._expr(node.value, env, info, depth, seen)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            # Comprehension targets bind the iterable's taint, so
            # `[WorkUnit(params={"a": v}) for v in values]` flows.
            local = dict(env)
            for comp in node.generators:
                iter_taint = self._expr(comp.iter, local, info, depth, seen)
                self._bind(comp.target, iter_taint, local)
                for cond in comp.ifs:
                    self._expr(cond, local, info, depth, seen)
            if isinstance(node, ast.DictComp):
                return self._expr(node.key, local, info, depth, seen) | self._expr(
                    node.value, local, info, depth, seen
                )
            return self._expr(node.elt, local, info, depth, seen)
        taint: FrozenSet[str] = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taint = taint | self._expr(child, env, info, depth, seen)
        return taint

    def _call(self, node: ast.Call, env, info, depth, seen) -> FrozenSet[str]:
        # options.get("name"[, default]) mints the concrete taint.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "get":
            base = self._expr(node.func.value, env, info, depth, seen)
            if "*options*" in base and node.args:
                key = node.args[0]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    extra = (
                        self._expr(node.args[1], env, info, depth, seen)
                        if len(node.args) > 1 else frozenset()
                    )
                    return frozenset({key.value}) | extra

        arg_taints = [self._expr(arg, env, info, depth, seen) for arg in node.args]
        kw_taints = {
            kw.arg: self._expr(kw.value, env, info, depth, seen)
            for kw in node.keywords if kw.arg is not None
        }
        combined = frozenset().union(*arg_taints, *kw_taints.values()) if (
            arg_taints or kw_taints
        ) else frozenset()

        name = dotted_name(node.func)
        if name is not None:
            # WorkUnit(...): record which option taints reach the cache
            # key — the params dict values, and the unit key string
            # (cache.key hashes both).
            if name.split(".")[-1] == "WorkUnit":
                params_value = kw_taints.get("params")
                params_node = next(
                    (kw.value for kw in node.keywords if kw.arg == "params"), None
                )
                if params_node is None and len(node.args) >= 3:
                    params_node = node.args[2]
                    params_value = arg_taints[2] if len(arg_taints) > 2 else None
                if params_node is not None:
                    if isinstance(params_node, ast.Dict):
                        for value in params_node.values:
                            self.flowed |= self._expr(value, env, info, depth, seen)
                    elif params_value:
                        self.flowed |= params_value
                key_taint = kw_taints.get("key")
                if key_taint is None and len(node.args) >= 2:
                    key_taint = arg_taints[1]
                if key_taint:
                    self.flowed |= key_taint
                return combined
            # Same-module helper: push taint through its parameters.
            callee = self.graph.resolve_function(info.module, name)
            if callee is not None and callee.module == info.module and combined:
                callee_taint: Dict[str, FrozenSet[str]] = {}
                for param, taint in zip(callee.params, arg_taints):
                    if taint:
                        callee_taint[param] = taint
                for param, taint in kw_taints.items():
                    if taint and param in callee.all_params:
                        callee_taint[param] = taint
                if callee_taint:
                    self._analyze(callee, callee_taint, depth + 1, seen)
        return combined


def check_cache_keys(ctx: AnalysisContext) -> None:
    graph = ctx.graph
    rule = CACHE_KEY_COMPLETENESS

    declared_options: Set[str] = set()
    for exp_id in sorted(graph.experiments):
        exp = graph.experiments[exp_id]
        declared_options.update(exp.options)
        if not exp.options:
            continue
        sweep = graph.sweeps.get(exp_id)
        if sweep is None:
            # No decomposition: the whole-run cache key carries the full
            # options mapping (engine hashes it verbatim) — safe.
            continue
        module = ctx.module_of(exp.module)
        sweep_module = ctx.module_of(sweep.module)
        if module is None:
            continue
        register_node = _node_at(module, exp.lineno, exp.col)
        if not sweep.takes_options:
            target = sweep_module if sweep_module is not None else module
            ctx.flag(
                target,
                _node_at(target, sweep.lineno, sweep.col),
                rule,
                f"experiment '{exp_id}' declares options "
                f"{sorted(exp.options)} but its SweepSpec has "
                "takes_options=False: units() never sees them, so they "
                "cannot reach WorkUnit.params (the cache key) and "
                "cached sweep units go stale across option values",
            )
            continue
        units_info = graph.functions.get(sweep.units or "")
        if units_info is None:
            continue
        options_param = _options_param(units_info)
        if options_param is None:
            continue
        flowed = _OptionTaint(ctx, graph).run(units_info, options_param)
        for option in sorted(set(exp.options)):
            if option not in flowed:
                ctx.flag(
                    module,
                    register_node,
                    rule,
                    f"option '{option}' of experiment '{exp_id}' never "
                    f"flows into WorkUnit.params in "
                    f"{sweep.units.split(':')[-1] if sweep.units else 'units()'}"
                    " — the result-cache key will not distinguish runs "
                    "with different values",
                )

    # CLI flag table cross-checks (when a _OPTION_FLAGS table is in scope).
    if graph.option_flags:
        flagged = {of.option for of in graph.option_flags}
        for of in graph.option_flags:
            if of.option not in declared_options:
                module = ctx.module_of(of.module)
                if module is not None:
                    ctx.flag(
                        module,
                        _node_at(module, of.lineno, of.col),
                        rule,
                        f"CLI flag {of.flag} maps to option '{of.option}' "
                        "which no registered experiment declares — the "
                        "flag is dead (or the declaration drifted)",
                    )
        for exp_id in sorted(graph.experiments):
            exp = graph.experiments[exp_id]
            module = ctx.module_of(exp.module)
            if module is None:
                continue
            for option in sorted(set(exp.options)):
                if option not in flagged:
                    ctx.flag(
                        module,
                        _node_at(module, exp.lineno, exp.col),
                        rule,
                        f"option '{option}' of experiment '{exp_id}' has "
                        "no _OPTION_FLAGS row: it cannot be set from the "
                        "CLI, so the declared knob is unreachable",
                    )


def _options_param(info: FunctionInfo) -> Optional[str]:
    if "options" in info.all_params:
        return "options"
    if len(info.params) >= 3:
        return info.params[2]
    return None


def _node_at(module: ParsedModule, lineno: int, col: int):
    """A tiny location carrier for findings anchored at stored positions."""

    class _Loc:
        pass

    loc = _Loc()
    loc.lineno = lineno
    loc.col_offset = col
    return loc


# -- RTX008: parallel shared-state -------------------------------------------

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "sort",
    "reverse",
}


def check_shared_state(ctx: AnalysisContext) -> None:
    graph = ctx.graph
    rule = PARALLEL_SHARED_STATE
    if not graph.pool_roots:
        return
    reachable = graph.reachable_from(sorted(graph.pool_roots))
    for qualname in sorted(reachable):
        info = graph.functions.get(qualname)
        if info is None:
            continue
        module = ctx.module_of(info.module)
        if module is None:
            continue
        _check_function_mutations(ctx, module, info, rule)


def _check_function_mutations(
    ctx: AnalysisContext, module: ParsedModule, info: FunctionInfo, rule
) -> None:
    graph = ctx.graph
    node = info.node
    global_decls: Set[str] = set()
    local_names: Set[str] = set(info.all_params)

    def add_bound_names(target: ast.expr) -> None:
        # Only plain-name (and destructuring) targets bind locals;
        # `CACHE[k] = v` / `obj.attr = v` mutate an existing object and
        # must NOT shadow the shared name they store into.
        if isinstance(target, ast.Name):
            local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_bound_names(element)
        elif isinstance(target, ast.Starred):
            add_bound_names(target.value)

    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            global_decls.update(sub.names)
        elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                add_bound_names(target)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            add_bound_names(sub.target)
        elif isinstance(sub, ast.comprehension):
            add_bound_names(sub.target)
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            add_bound_names(sub.optional_vars)
    local_names -= global_decls

    #: Parameters aliasing shared state: a mutable default display, or a
    #: default naming a module-level mutable.
    shared_params: Dict[str, str] = {}
    for param, default in info.defaults.items():
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            shared_params[param] = "mutable default"
        elif isinstance(default, (ast.Name, ast.Attribute)):
            name = dotted_name(default)
            if name is not None and graph.resolve_mutable(info.module, name):
                shared_params[param] = f"default aliasing module global `{name}`"

    def shared_target(expr: ast.expr) -> Optional[str]:
        """Describe ``expr`` if it names worker-shared state."""
        name = dotted_name(expr)
        if name is None:
            return None
        head = name.split(".")[0]
        if head in shared_params:
            return f"parameter `{head}` ({shared_params[head]})"
        if head in local_names:
            return None
        resolved = graph.resolve_mutable(info.module, name)
        if resolved is not None:
            owner_module, owner_name, _ = resolved
            where = (
                f"module-level mutable `{owner_name}`"
                if owner_module == info.module
                else f"module-level mutable `{owner_module}.{owner_name}`"
            )
            return where
        return None

    fn_label = info.local_name

    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    described = shared_target(target.value)
                    if described is not None:
                        ctx.flag(
                            module, sub, rule,
                            f"`{fn_label}` (reachable from a process-pool "
                            f"submission) writes into {described}; worker "
                            "state leaks across work units and breaks "
                            "serial/parallel byte-identity",
                        )
                elif isinstance(target, ast.Name) and target.id in global_decls:
                    resolved = graph.resolve_mutable(info.module, target.id)
                    in_assigns = target.id in graph.symbols.get(
                        info.module, None
                    ).assigns if graph.symbols.get(info.module) else False
                    if resolved is not None or in_assigns:
                        ctx.flag(
                            module, sub, rule,
                            f"`{fn_label}` (reachable from a process-pool "
                            f"submission) rebinds module global "
                            f"`{target.id}`; worker state leaks across "
                            "work units",
                        )
        elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in _MUTATOR_METHODS:
                described = shared_target(sub.func.value)
                if described is not None:
                    ctx.flag(
                        module, sub, rule,
                        f"`{fn_label}` (reachable from a process-pool "
                        f"submission) calls .{sub.func.attr}() on "
                        f"{described}; worker state leaks across work "
                        "units and breaks serial/parallel byte-identity",
                    )


# -- RTX009: flow-sensitive unit inference -----------------------------------

#: Unit scale indices: value_in_us = value * 1000**index.
_UNITS = {"us": 0, "ms": 1, "s": 2}
_UNIT_LABEL = {"us": "microseconds", "ms": "milliseconds", "s": "seconds"}

_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_us", "us"), ("_usec", "us"), ("_usecs", "us"),
    ("_ms", "ms"), ("_msec", "ms"), ("_msecs", "ms"),
    ("_seconds", "s"), ("_secs", "s"), ("_sec", "s"), ("_s", "s"),
)

#: Calls whose return unit is known a priori.
_KNOWN_CALL_UNITS = {
    "perf_counter": "s",
    "monotonic": "s",
    "process_time": "s",
    "total_seconds": "s",
}

#: Conversion factors: multiplying by 1000**k moves k steps toward µs.
_FACTOR_STEPS = {
    1000: 1, 1000.0: 1, 1_000_000: 2, 1_000_000.0: 2,
    0.001: -1, 1e-06: -2,
}


def unit_of_name(name: str) -> Optional[str]:
    lower = name.lower()
    for suffix, unit in _SUFFIX_UNITS:
        if lower.endswith(suffix):
            return unit
    return None


class _UnitPass:
    def __init__(self, ctx: AnalysisContext):
        self.ctx = ctx
        self.graph = ctx.graph
        #: qualname -> inferred return unit.
        self.returns: Dict[str, Optional[str]] = {}

    def run(self) -> None:
        # Phase 1: return units from name suffixes, then one inference
        # sweep so unsuffixed helpers returning µs expressions count.
        for qualname, info in self.graph.functions.items():
            self.returns[qualname] = unit_of_name(info.local_name.split(".")[-1])
        for _ in range(2):
            for qualname, info in self.graph.functions.items():
                if self.returns[qualname] is None:
                    self.returns[qualname] = self._infer_return(info)
        # Phase 2: the reporting pass.
        for qualname in sorted(self.graph.functions):
            info = self.graph.functions[qualname]
            module = self.ctx.module_of(info.module)
            if module is not None:
                self._check_function(module, info)

    # -- return-unit inference (no findings emitted) ------------------------

    def _infer_return(self, info: FunctionInfo) -> Optional[str]:
        env = self._seed_env(info)
        units: Set[str] = set()
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                unit = self._infer(sub.value, env, info, report=None)
                if unit is not None:
                    units.add(unit)
        return units.pop() if len(units) == 1 else None

    def _seed_env(self, info: FunctionInfo) -> Dict[str, Optional[str]]:
        env: Dict[str, Optional[str]] = {}
        for param in info.all_params:
            unit = unit_of_name(param)
            if unit is not None:
                env[param] = unit
        return env

    # -- checking ------------------------------------------------------------

    def _check_function(self, module: ParsedModule, info: FunctionInfo) -> None:
        env = self._seed_env(info)
        return_unit = self.returns.get(info.qualname)
        name_unit = unit_of_name(info.local_name.split(".")[-1])

        def report(node: ast.AST, message: str) -> None:
            self.ctx.flag(module, node, UNIT_FLOW, message)

        def visit_block(stmts: Sequence[ast.stmt]) -> None:
            for stmt in stmts:
                visit(stmt)

        def visit(stmt: ast.stmt) -> None:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return  # nested defs are analyzed via their own info, if any
            if isinstance(stmt, ast.Assign):
                unit = self._infer(stmt.value, env, info, report)
                for target in stmt.targets:
                    self._bind_unit(target, unit, env, report, stmt)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                unit = self._infer(stmt.value, env, info, report)
                self._bind_unit(stmt.target, unit, env, report, stmt)
            elif isinstance(stmt, ast.AugAssign):
                value_unit = self._infer(stmt.value, env, info, report)
                if isinstance(stmt.op, (ast.Add, ast.Sub)) and isinstance(
                    stmt.target, ast.Name
                ):
                    target_unit = env.get(stmt.target.id) or unit_of_name(
                        stmt.target.id
                    )
                    if (
                        target_unit is not None
                        and value_unit is not None
                        and target_unit != value_unit
                    ):
                        report(
                            stmt,
                            f"augmented assignment mixes "
                            f"{_UNIT_LABEL[target_unit]} "
                            f"(`{stmt.target.id}`) with a "
                            f"{_UNIT_LABEL[value_unit]} value",
                        )
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    unit = self._infer(stmt.value, env, info, report)
                    if (
                        name_unit is not None
                        and unit is not None
                        and unit != name_unit
                    ):
                        report(
                            stmt,
                            f"function `{info.local_name}` is named in "
                            f"{_UNIT_LABEL[name_unit]} but returns a "
                            f"{_UNIT_LABEL[unit]} value",
                        )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                iter_unit = self._infer(stmt.iter, env, info, report)
                self._bind_unit(stmt.target, iter_unit, env, None, stmt)
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._infer(stmt.test, env, info, report)
                visit_block(stmt.body)
                visit_block(stmt.orelse)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._infer(item.context_expr, env, info, report)
                visit_block(stmt.body)
            elif isinstance(stmt, ast.Try):
                visit_block(stmt.body)
                for handler in stmt.handlers:
                    visit_block(handler.body)
                visit_block(stmt.orelse)
                visit_block(stmt.finalbody)
            elif isinstance(stmt, ast.Expr):
                self._infer(stmt.value, env, info, report)

        visit_block(getattr(info.node, "body", []))
        _ = return_unit  # reserved for future cross-checks

    def _bind_unit(
        self,
        target: ast.expr,
        unit: Optional[str],
        env: Dict[str, Optional[str]],
        report,
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Name):
            declared = unit_of_name(target.id)
            if (
                report is not None
                and declared is not None
                and unit is not None
                and unit != declared
            ):
                report(
                    stmt,
                    f"assigning a {_UNIT_LABEL[unit]} value to "
                    f"`{target.id}`, which is named in "
                    f"{_UNIT_LABEL[declared]}",
                )
            env[target.id] = declared if declared is not None else unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_unit(element, None, env, None, stmt)
        elif isinstance(target, ast.Attribute):
            declared = unit_of_name(target.attr)
            if (
                report is not None
                and declared is not None
                and unit is not None
                and unit != declared
            ):
                report(
                    stmt,
                    f"assigning a {_UNIT_LABEL[unit]} value to "
                    f"`.{target.attr}`, which is named in "
                    f"{_UNIT_LABEL[declared]}",
                )

    # -- expression inference ------------------------------------------------

    def _infer(
        self,
        node: ast.expr,
        env: Dict[str, Optional[str]],
        info: FunctionInfo,
        report,
    ) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, env, info, report)
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand, env, info, report)
        if isinstance(node, ast.Compare):
            self._check_compare(node, env, info, report)
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node, env, info, report)
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env, info, report)
            body = self._infer(node.body, env, info, report)
            orelse = self._infer(node.orelse, env, info, report)
            return body if body is not None else orelse
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            units = {
                u for u in (
                    self._infer(e, env, info, report) for e in node.elts
                ) if u is not None
            }
            return units.pop() if len(units) == 1 else None
        if isinstance(node, ast.Subscript):
            self._infer(node.value, env, info, report)
            # Element of a suffixed collection keeps the collection unit.
            name = dotted_name(node.value)
            if name is not None:
                return unit_of_name(name.split(".")[-1])
            return None
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            local = dict(env)
            for generator in node.generators:
                gen_unit = self._infer(generator.iter, local, info, report)
                self._bind_unit(generator.target, gen_unit, local, None, node)
            return self._infer(node.elt, local, info, report)
        # Fall through: inspect children without deriving a unit.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._infer(child, env, info, report)
        return None

    def _infer_binop(self, node: ast.BinOp, env, info, report) -> Optional[str]:
        left = self._infer(node.left, env, info, report)
        right = self._infer(node.right, env, info, report)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and left != right:
                if report is not None:
                    report(
                        node,
                        f"{'adds' if isinstance(node.op, ast.Add) else 'subtracts'} "
                        f"a {_UNIT_LABEL[right]} value "
                        f"{'to' if isinstance(node.op, ast.Add) else 'from'} a "
                        f"{_UNIT_LABEL[left]} value",
                    )
                return left
            return left if left is not None else right
        if isinstance(node.op, (ast.Mult, ast.Div)):
            unit, other = (left, node.right) if left is not None else (right, node.left)
            if left is not None and right is not None:
                return None  # µs·µs etc: no longer a time
            if unit is None:
                return None
            steps = self._conversion_steps(other)
            if steps is None:
                return unit  # scaling by a unitless quantity
            direction = steps if isinstance(node.op, ast.Mult) else -steps
            # Multiplying by 1000**k moves k steps toward µs on the
            # {us:0, ms:1, s:2} index (dividing moves away).
            index = _UNITS[unit] - direction
            for name, idx in _UNITS.items():
                if idx == index:
                    return name
            return None
        if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
            return left
        return None

    @staticmethod
    def _conversion_steps(node: ast.expr) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return _FACTOR_STEPS.get(node.value)
        return None

    def _check_compare(self, node: ast.Compare, env, info, report) -> None:
        operands = [node.left] + list(node.comparators)
        units = [self._infer(op, env, info, report) for op in operands]
        known = [(op, u) for op, u in zip(operands, units) if u is not None]
        for (_, a), (_, b) in zip(known, known[1:]):
            if a != b and report is not None:
                report(
                    node,
                    f"comparison mixes {_UNIT_LABEL[a]} and "
                    f"{_UNIT_LABEL[b]} values",
                )
                return

    def _infer_call(self, node: ast.Call, env, info, report) -> Optional[str]:
        for arg in node.args:
            self._infer(arg, env, info, report)
        name = dotted_name(node.func)
        tail = name.split(".")[-1] if name is not None else None

        callee = (
            self.graph.resolve_function(info.module, name)
            if name is not None else None
        )
        # Argument/parameter unit agreement across the call boundary.
        if callee is not None:
            positional = callee.params
            offset = 1 if positional and positional[0] in ("self", "cls") else 0
            for i, arg in enumerate(node.args):
                if i + offset >= len(positional):
                    break
                self._check_arg(
                    arg, positional[i + offset], env, info, report
                )
            for kw in node.keywords:
                if kw.arg is not None:
                    self._check_arg(kw.value, kw.arg, env, info, report)
        else:
            # Unresolved callee: a suffixed keyword name still declares
            # the expected unit (dataclass fields, config kwargs).
            for kw in node.keywords:
                if kw.arg is not None:
                    self._check_arg(kw.value, kw.arg, env, info, report)

        if tail in ("min", "max", "sum", "abs", "sorted"):
            units = {
                u for u in (
                    self._infer(arg, env, info, report) for arg in node.args
                ) if u is not None
            }
            if len(units) > 1 and report is not None and tail in ("min", "max"):
                pair = sorted(units)
                report(
                    node,
                    f"{tail}() mixes {_UNIT_LABEL[pair[0]]} and "
                    f"{_UNIT_LABEL[pair[1]]} arguments",
                )
            return units.pop() if len(units) == 1 else None

        if callee is not None:
            return self.returns.get(callee.qualname)
        if tail is not None:
            if tail in _KNOWN_CALL_UNITS:
                return _KNOWN_CALL_UNITS[tail]
            declared = unit_of_name(tail)
            if declared is not None:
                return declared
        return None

    def _check_arg(self, arg: ast.expr, param: str, env, info, report) -> None:
        declared = unit_of_name(param)
        if declared is None or report is None:
            return
        unit = self._infer(arg, env, info, None)
        if unit is not None and unit != declared:
            report(
                arg,
                f"passing a {_UNIT_LABEL[unit]} value where parameter "
                f"`{param}` expects {_UNIT_LABEL[declared]}",
            )


def check_unit_flow(ctx: AnalysisContext) -> None:
    _UnitPass(ctx).run()


# -- RTX010: trace-emit conformance ------------------------------------------

#: Emit-helper name -> event kind; signatures come from the live
#: RunTrace class so the check can never drift from the real vocabulary.
_EMITTER_KINDS = {
    "arrival": "arrival",
    "task": "task",
    "subtask": "subtask",
    "migration_planned": "migration_planned",
    "migration_executed": "migration_executed",
    "migration_returned": "migration_returned",
    "gap": "gap",
    "deadline": "deadline",
}

#: Modules that define/transport the vocabulary rather than emit into
#: it; their TraceEvent constructions are exempt.
_VOCAB_MODULE_PREFIXES = ("repro.obs", "repro.check")


def _emitter_signatures() -> Dict[str, Tuple[Set[str], bool]]:
    """helper name -> (named keyword params, accepts **args payload)."""
    import inspect

    from repro.obs.trace import RunTrace

    signatures: Dict[str, Tuple[Set[str], bool]] = {}
    for helper in _EMITTER_KINDS:
        sig = inspect.signature(getattr(RunTrace, helper))
        named = {
            p.name for p in sig.parameters.values()
            if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
            and p.name != "self"
        }
        has_var_kw = any(
            p.kind == p.VAR_KEYWORD for p in sig.parameters.values()
        )
        signatures[helper] = (named, has_var_kw)
    return signatures


def check_trace_emits(ctx: AnalysisContext) -> None:
    from repro.obs.events import EVENT_ARG_FIELDS, EVENT_KINDS

    rule = TRACE_EMIT_CONFORMANCE
    signatures = _emitter_signatures()
    graph = ctx.graph

    for module in ctx.modules:
        if module.name.startswith(_VOCAB_MODULE_PREFIXES):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            # Emit-helper calls on a trace-like receiver.
            if isinstance(node.func, ast.Attribute):
                helper = node.func.attr
                if helper in _EMITTER_KINDS and _trace_receiver(node.func.value):
                    _check_helper_call(
                        ctx, module, node, helper, signatures,
                        EVENT_ARG_FIELDS, rule,
                    )
            # Direct TraceEvent(...) construction.
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "TraceEvent":
                _check_event_ctor(
                    ctx, module, graph, node, EVENT_KINDS, EVENT_ARG_FIELDS, rule
                )


def _trace_receiver(expr: ast.expr) -> bool:
    name = dotted_name(expr)
    if name is None:
        return False
    return "trace" in name.lower()


def _check_helper_call(
    ctx, module, node: ast.Call, helper: str, signatures, arg_fields, rule
) -> None:
    named, has_var_kw = signatures[helper]
    kind = _EMITTER_KINDS[helper]
    allowed_payload = arg_fields.get(kind, frozenset())
    for kw in node.keywords:
        if kw.arg is None:
            continue  # **spread: not statically checkable
        if kw.arg in named:
            continue
        if has_var_kw:
            if kw.arg not in allowed_payload:
                known = ", ".join(sorted(allowed_payload)) or "(none)"
                ctx.flag(
                    module, kw.value, rule,
                    f"trace.{helper}() payload key '{kw.arg}' is not in "
                    f"the '{kind}' args vocabulary (known: {known}); "
                    "add it to EVENT_ARG_FIELDS in repro.obs.events "
                    "first",
                )
        else:
            ctx.flag(
                module, kw.value, rule,
                f"trace.{helper}() has no keyword '{kw.arg}' — the emit "
                "helper would raise TypeError at runtime",
            )


def _check_event_ctor(
    ctx, module, graph: ProjectGraph, node: ast.Call, kinds, arg_fields, rule
) -> None:
    kind_expr: Optional[ast.expr] = node.args[0] if node.args else None
    for kw in node.keywords:
        if kw.arg == "kind":
            kind_expr = kw.value
    kind: Optional[str] = None
    if isinstance(kind_expr, ast.Constant) and isinstance(kind_expr.value, str):
        kind = kind_expr.value
    elif kind_expr is not None:
        name = dotted_name(kind_expr)
        if name is not None:
            resolved = graph.resolve_constant(module.name, name)
            if isinstance(resolved, ast.Constant) and isinstance(
                resolved.value, str
            ):
                kind = resolved.value
    if kind is not None and kind not in kinds:
        ctx.flag(
            module, kind_expr if kind_expr is not None else node, rule,
            f"TraceEvent kind '{kind}' is not in EVENT_KINDS "
            f"({', '.join(kinds)}) — downstream consumers will drop or "
            "mis-aggregate it",
        )
        return
    args_expr: Optional[ast.expr] = None
    for kw in node.keywords:
        if kw.arg == "args":
            args_expr = kw.value
    if kind is not None and isinstance(args_expr, ast.Dict):
        allowed = arg_fields.get(kind, frozenset())
        for key in args_expr.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                if key.value not in allowed:
                    known = ", ".join(sorted(allowed)) or "(none)"
                    ctx.flag(
                        module, key, rule,
                        f"TraceEvent args key '{key.value}' is not in the "
                        f"'{kind}' vocabulary (known: {known}); add it to "
                        "EVENT_ARG_FIELDS in repro.obs.events first",
                    )


# -- driver -------------------------------------------------------------------

_PASSES = (
    ("RTX007", check_cache_keys),
    ("RTX008", check_shared_state),
    ("RTX009", check_unit_flow),
    ("RTX010", check_trace_emits),
)


def analyze_modules(
    modules: Sequence[ParsedModule],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run the flow passes over an already-parsed module set.

    ``select``/``ignore`` filter by rule id (select wins first, then
    ignore removes); passes whose rule is filtered out are skipped
    entirely.  Inline ``# repro-check: allow`` waivers are honoured the
    same way the lint honours them.
    """
    wanted = {
        rule_id for rule_id, _ in _PASSES
        if (select is None or rule_id in select)
        and (ignore is None or rule_id not in ignore)
    }
    ctx = AnalysisContext(modules=list(modules), graph=build_graph(modules))
    for rule_id, pass_fn in _PASSES:
        if rule_id in wanted:
            pass_fn(ctx)
    lines_by_path = {module.path: module.lines for module in modules}
    findings = apply_waivers(ctx.findings, lines_by_path)
    return sorted(findings, key=lambda f: f.sort_key)


def analyze_paths(
    paths: Sequence[PathLike],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Finding]:
    """Parse (once) and analyze files and directory trees."""
    return analyze_modules(load_modules(list(paths)), select=select, ignore=ignore)


# -- baseline -----------------------------------------------------------------


def finding_key(finding: Finding) -> Dict[str, str]:
    """Baseline identity: path + rule + message (line numbers drift)."""
    return {
        "path": Path(finding.path).as_posix(),
        "rule": finding.rule.rule_id,
        "message": finding.message,
    }


def load_baseline(path: PathLike) -> List[Dict[str, str]]:
    payload = json.loads(Path(path).read_text())
    entries = payload.get("entries", []) if isinstance(payload, dict) else []
    out: List[Dict[str, str]] = []
    for entry in entries:
        if isinstance(entry, dict) and {"path", "rule", "message"} <= set(entry):
            out.append(
                {
                    "path": str(entry["path"]),
                    "rule": str(entry["rule"]),
                    "message": str(entry["message"]),
                }
            )
    return out


def write_baseline(path: PathLike, findings: Sequence[Finding]) -> None:
    payload = {
        "version": 1,
        "comment": (
            "Accepted `repro.check analyze` findings. Entries are matched "
            "by (path, rule, message) so line drift does not invalidate "
            "them; regenerate with `python -m repro.check analyze "
            "--write-baseline`."
        ),
        "entries": [finding_key(f) for f in findings],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def split_by_baseline(
    findings: Sequence[Finding], entries: Sequence[Mapping[str, str]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
    """Partition findings into (new, baselined); also report stale entries."""
    remaining = [dict(entry) for entry in entries]
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if key in remaining:
            remaining.remove(key)
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined, remaining


def report_json(
    findings: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    stale: Sequence[Mapping[str, str]] = (),
    baseline_path: Optional[str] = None,
) -> Dict[str, object]:
    """Machine-readable ``--format json`` document."""
    def render(finding: Finding) -> Dict[str, object]:
        return {
            "path": Path(finding.path).as_posix(),
            "line": finding.line,
            "col": finding.col,
            "rule": finding.rule.rule_id,
            "name": finding.rule.name,
            "message": finding.message,
        }

    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule.rule_id] = counts.get(finding.rule.rule_id, 0) + 1
    return {
        "version": 1,
        "tool": "repro.check analyze",
        "findings": [render(f) for f in findings],
        "baselined": [render(f) for f in baselined],
        "counts": dict(sorted(counts.items())),
        "baseline": {
            "path": baseline_path,
            "suppressed": len(baselined),
            "stale_entries": [dict(entry) for entry in stale],
        },
    }
