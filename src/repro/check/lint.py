"""AST determinism lint for the RT-OPEX reproduction.

A small, repo-specific static analyzer: it walks Python sources with
:mod:`ast` and flags the hazard classes in :mod:`repro.check.rules` —
wall-clock reads, global/unseeded RNG use, unordered iteration feeding
scheduling decisions, int/float microsecond mixing, and mutable default
arguments.  It is deliberately syntactic: no type inference, no data
flow — every rule is written so that a match is either a real hazard or
a line that *deserves* the explicit ``sorted()`` / seed / waiver that
silences it.

Entry points: :func:`lint_source` (one module, for tests and fixtures),
:func:`lint_file`, and :func:`lint_paths` (files and directory trees,
what the CLI calls).  Findings are returned sorted and render as
``path:line:col RTX0NN message`` — the same shape ruff prints, so CI
output stays familiar.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.check.parse import (
    ParsedModule,
    iter_python_files,
    load_modules,
    parse_file,
    parse_source,
)
from repro.check.rules import (
    ENV_READ,
    ENV_READ_ALLOWED_PARTS,
    MUTABLE_DEFAULT,
    ORDERED_MODULE_PARTS,
    UNORDERED_ITERATION,
    UNSEEDED_RNG,
    US_UNIT_MIXING,
    WAIVER_MARKER,
    WALLCLOCK,
    WALLCLOCK_ALLOWED_PARTS,
    Rule,
    path_matches,
)

PathLike = Union[str, Path]

#: Canonical wall-clock callables (after alias resolution).
_WALLCLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: ``datetime.now()`` is a wall-clock read only when called with no
#: ``tz``/argument — an argful call is still wall clock, so flag both;
#: kept separate for the message text.
_DATETIME_NOW = "datetime.datetime.now"

#: numpy.random module-level functions that mutate/read the hidden
#: global RandomState.  Seeded constructors (default_rng(seed),
#: Generator, SeedSequence, PCG64...) are deliberately absent.
_NP_GLOBAL_STATE_FNS: Set[str] = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "random_integers", "ranf", "sample", "bytes", "choice", "shuffle",
    "permutation", "uniform", "normal", "standard_normal", "gamma",
    "poisson", "exponential", "beta", "binomial", "lognormal",
    "get_state", "set_state",
}

#: Order-preserving wrappers that are transparent for RTX003: iterating
#: ``enumerate(d.values())`` is exactly as unordered as ``d.values()``.
_TRANSPARENT_WRAPPERS: Set[str] = {"enumerate", "reversed", "list", "tuple", "zip"}

#: Builtin constructors whose call as a default argument is mutable.
_MUTABLE_CONSTRUCTORS: Set[str] = {"list", "dict", "set", "bytearray", "defaultdict"}


@dataclass(frozen=True)
class Finding:
    """One lint violation, addressable as ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: Rule
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule.rule_id} {self.message}"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule.rule_id)


class _Aliases:
    """Import-alias tracking: local name -> canonical dotted prefix."""

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            canonical = alias.name if alias.asname else alias.name.split(".")[0]
            self.names[local] = canonical

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never reach stdlib/numpy
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.names.get(parts[0], parts[0])
        # "numpy" may itself be aliased ("np"); canonicalize the head
        # then re-join the attribute tail.
        return ".".join([head] + parts[1:])


def _canonical_np(name: str) -> Optional[Tuple[str, str]]:
    """Split a resolved dotted name into (``numpy.random``, fn) if it is one."""
    if not name.startswith("numpy."):
        return None
    parts = name.split(".")
    if len(parts) >= 3 and parts[1] == "random":
        return ".".join(parts[:-1]), parts[-1]
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, module_parts: Sequence[str]):
        self.path = path
        self.module_parts = tuple(module_parts)
        self.aliases = _Aliases()
        self.findings: List[Finding] = []
        self.wallclock_allowed = path_matches(self.module_parts, WALLCLOCK_ALLOWED_PARTS)
        self.ordered_module = path_matches(self.module_parts, ORDERED_MODULE_PARTS)
        self.env_allowed = path_matches(self.module_parts, ENV_READ_ALLOWED_PARTS)

    # -- helpers -------------------------------------------------------------

    def _flag(self, node: ast.AST, rule: Rule, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.aliases.add_import(node)
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._flag(
                    node, UNSEEDED_RNG,
                    "stdlib `random` uses hidden global state; draw from "
                    "repro.sim.rng.RngStreams instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.aliases.add_import_from(node)
        if node.module == "random" and not node.level:
            self._flag(
                node, UNSEEDED_RNG,
                "stdlib `random` uses hidden global state; draw from "
                "repro.sim.rng.RngStreams instead",
            )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = self.aliases.resolve(node.func)
        if name is not None:
            self._check_wallclock(node, name)
            self._check_numpy_rng(node, name)
            self._check_env_call(node, name)
        self.generic_visit(node)

    def _check_wallclock(self, node: ast.Call, name: str) -> None:
        if self.wallclock_allowed:
            return
        if name in _WALLCLOCK_CALLS:
            self._flag(
                node, WALLCLOCK,
                f"wall-clock call {name}() outside repro.runtime; the "
                "simulation must use virtual time",
            )
        elif name == _DATETIME_NOW or name.endswith(".now") and name in (
            "datetime.now",  # `from datetime import datetime` unresolved tail
        ):
            self._flag(
                node, WALLCLOCK,
                "datetime.now() reads the wall clock outside repro.runtime",
            )

    def _check_numpy_rng(self, node: ast.Call, name: str) -> None:
        split = _canonical_np(name)
        if split is None:
            return
        _, fn = split
        if fn in _NP_GLOBAL_STATE_FNS:
            self._flag(
                node, UNSEEDED_RNG,
                f"numpy global-state RNG numpy.random.{fn}(); use a seeded "
                "Generator from repro.sim.rng.RngStreams",
            )
        elif fn == "default_rng" and not node.args and not node.keywords:
            self._flag(
                node, UNSEEDED_RNG,
                "numpy.random.default_rng() without a seed is entropy-"
                "seeded; pass an explicit seed or use repro.sim.rng",
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # A *reference* to default_rng (not a call) escapes as an
        # unseeded factory — e.g. `field(default_factory=np.random.default_rng)`.
        if node.attr == "default_rng" and not isinstance(
            getattr(node, "_parent_call", None), ast.Call
        ):
            name = self.aliases.resolve(node)
            if name is not None and _canonical_np(name) is not None:
                self._flag(
                    node, UNSEEDED_RNG,
                    "bare numpy.random.default_rng reference escapes as an "
                    "unseeded factory; wrap it with an explicit seed",
                )
        # A bare `os.environ` reference (dict(os.environ), `in` tests,
        # aliasing) reads host state just as a .get() does.  Skip the
        # inner node of `os.environ.get(...)` / `os.environ[...]` — the
        # enclosing call/subscript site flags itself.
        if (
            node.attr == "environ"
            and not self.env_allowed
            and not isinstance(
                getattr(node, "_parent_expr", None), (ast.Attribute, ast.Subscript)
            )
            and self.aliases.resolve(node) == "os.environ"
        ):
            self._flag(
                node, ENV_READ,
                "os.environ reference outside repro.runtime/repro.check; "
                "take configuration as explicit arguments",
            )
        self.generic_visit(node)

    # -- environment reads (RTX006) ------------------------------------------

    def _check_env_call(self, node: ast.Call, name: str) -> None:
        if self.env_allowed:
            return
        if name == "os.getenv" or name.startswith("os.environ."):
            self._flag(
                node, ENV_READ,
                f"environment read {name}() outside repro.runtime/"
                "repro.check; take configuration as explicit arguments",
            )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            not self.env_allowed
            and self.aliases.resolve(node.value) == "os.environ"
        ):
            self._flag(
                node, ENV_READ,
                "os.environ[...] read outside repro.runtime/repro.check; "
                "take configuration as explicit arguments",
            )
        self.generic_visit(node)

    # -- iteration order (RTX003) --------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            self._check_iteration(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if not self.ordered_module:
            return
        expr: ast.expr = iter_node
        # Unwrap order-preserving wrappers (enumerate(d.values()) is as
        # unordered as d.values() itself).
        while (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in _TRANSPARENT_WRAPPERS
            and expr.args
        ):
            expr = expr.args[0]
        if isinstance(expr, ast.Set) or (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        ):
            self._flag(
                iter_node, UNORDERED_ITERATION,
                "iterating a set in a scheduling module; wrap in sorted() "
                "with an explicit key",
            )
        elif (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("keys", "values", "items")
            and not expr.args
        ):
            self._flag(
                iter_node, UNORDERED_ITERATION,
                f"iterating .{expr.func.attr}() in a scheduling module; "
                "iterate sorted(...) so the order is part of the contract",
            )

    # -- microsecond unit hygiene (RTX004) -----------------------------------

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_us_annotation(node.target, node.annotation)
        self.generic_visit(node)

    def _check_us_annotation(self, target: ast.expr, annotation: ast.expr) -> None:
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.arg):  # pragma: no cover - arg path below
            name = target.arg
        if name is None or not name.endswith("_us"):
            return
        if isinstance(annotation, ast.Name) and annotation.id == "int":
            self._flag(
                annotation, US_UNIT_MIXING,
                f"microsecond field `{name}` annotated int; virtual time is "
                "float microseconds end to end",
            )

    def _check_arg_annotations(self, args: ast.arguments) -> None:
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            if (
                arg.arg.endswith("_us")
                and isinstance(arg.annotation, ast.Name)
                and arg.annotation.id == "int"
            ):
                self._flag(
                    arg, US_UNIT_MIXING,
                    f"microsecond argument `{arg.arg}` annotated int; "
                    "virtual time is float microseconds",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        # Int-literal microsecond *constants* (FOO_US = 30) truncate
        # later arithmetic differently than floats on some paths.
        if (
            isinstance(node.value, ast.Constant)
            and type(node.value.value) is int
        ):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.endswith("_US"):
                    self._flag(
                        node, US_UNIT_MIXING,
                        f"microsecond constant `{target.id}` is an int "
                        "literal; write it as a float",
                    )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.FloorDiv):
            for side in (node.left, node.right):
                name = None
                if isinstance(side, ast.Name):
                    name = side.id
                elif isinstance(side, ast.Attribute):
                    name = side.attr
                if name is not None and name.endswith("_us"):
                    self._flag(
                        node, US_UNIT_MIXING,
                        f"floor division on microsecond value `{name}` "
                        "truncates virtual time; use true division",
                    )
                    break
        self.generic_visit(node)

    # -- mutable defaults (RTX005) -------------------------------------------

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            ):
                self._flag(
                    default, MUTABLE_DEFAULT,
                    "mutable default argument is shared across calls; "
                    "default to None and allocate inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self._check_arg_annotations(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self._check_arg_annotations(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)


def _mark_call_parents(tree: ast.AST) -> None:
    """Tag each Call's func node so bare-reference checks can skip it."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            node.func._parent_call = node  # type: ignore[attr-defined]
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            # The value under an attribute/subscript access is flagged at
            # the access site, not as a bare reference.
            node.value._parent_expr = node  # type: ignore[attr-defined]


def apply_waivers(
    findings: Sequence[Finding], lines_by_path: Mapping[str, Sequence[str]]
) -> List[Finding]:
    """Drop findings waived by an inline ``# repro-check: allow`` comment.

    Shared by the lint and the analyzer: ``lines_by_path`` maps each
    finding's path to its (already split, parse-once) source lines.  A
    bare marker waives every rule on its line; ``allow RTX001,RTX008``
    waives only the listed ids.
    """
    kept: List[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path, ())
        if 1 <= finding.line <= len(lines):
            text = lines[finding.line - 1]
            marker = text.find(WAIVER_MARKER)
            if marker >= 0:
                spec = text[marker + len(WAIVER_MARKER):].strip()
                waived = {part.strip().upper() for part in spec.split(",") if part.strip()}
                if not waived or finding.rule.rule_id in waived:
                    continue
        kept.append(finding)
    return kept


def filter_rules(
    findings: Sequence[Finding],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Finding]:
    """Apply ``--select``/``--ignore`` rule-id sets (select wins first)."""
    out: List[Finding] = []
    for finding in findings:
        rule_id = finding.rule.rule_id
        if select is not None and rule_id not in select:
            continue
        if ignore is not None and rule_id in ignore:
            continue
        out.append(finding)
    return out


def lint_module(
    module: ParsedModule,
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one already-parsed module (the parse-once entry point)."""
    _mark_call_parents(module.tree)
    visitor = _Visitor(module.path, module.module_parts)
    visitor.visit(module.tree)
    findings = apply_waivers(visitor.findings, {module.path: module.lines})
    findings = filter_rules(findings, select=select, ignore=ignore)
    return sorted(findings, key=lambda f: f.sort_key)


def lint_source(
    source: str,
    path: PathLike = "<string>",
    module_parts: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one module's source text.

    ``module_parts`` overrides the path components used for the
    path-scoped rules (wall-clock allowlist, ordered-iteration scope) —
    fixtures use it to impersonate scheduling modules.
    """
    return lint_module(parse_source(source, path=path, module_parts=module_parts))


def lint_file(path: PathLike) -> List[Finding]:
    """Lint one file on disk."""
    return lint_module(parse_file(path))


def lint_modules(
    modules: Sequence[ParsedModule],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint an already-parsed module set (shared with ``analyze``)."""
    findings: List[Finding] = []
    for module in modules:
        findings.extend(lint_module(module, select=select, ignore=ignore))
    return sorted(findings, key=lambda f: f.sort_key)


def lint_paths(
    paths: Iterable[PathLike],
    select: Optional[Set[str]] = None,
    ignore: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint files and directory trees; findings come back sorted."""
    return lint_modules(load_modules(list(paths)), select=select, ignore=ignore)
