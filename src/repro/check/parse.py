"""Parse-once module loading shared by the lint and the analyzer.

Every ``repro.check`` consumer of a source file — the per-file rule
visitors in :mod:`repro.check.lint`, the project graph builder in
:mod:`repro.check.graph`, the flow passes in
:mod:`repro.check.analyze`, and the inline-waiver filter — works from
the same :class:`ParsedModule`: one ``ast.parse`` per file, one
``splitlines`` per file, with the tree and the line list shared by
reference.  ``python -m repro.check lint`` and ``analyze`` both go
through :func:`load_modules`, so running either (or both over the same
tree) never re-parses a file.

Module naming: a file under a ``repro`` package directory gets its real
dotted name (``src/repro/sched/rtopex.py`` → ``repro.sched.rtopex``),
which is what lets the graph resolve absolute ``repro.*`` imports
between files.  Files outside any package (fixtures, scratch scripts)
are named by their stem and resolve only relative siblings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]


@dataclass
class ParsedModule:
    """One source file, parsed exactly once.

    ``module_parts`` is what the path-scoped lint rules match against
    (directory pairs like ``("repro", "sched")``); ``name`` is the
    dotted module name the graph resolves imports with.
    """

    path: str
    name: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    module_parts: Tuple[str, ...] = ()

    @property
    def is_package_init(self) -> bool:
        return Path(self.path).name == "__init__.py"


def module_name_for(path: PathLike) -> str:
    """Dotted module name for a file path.

    Anchored at the outermost ``repro`` path component when present
    (the repo layout puts everything under ``src/repro``); otherwise
    the file's stem.  ``__init__.py`` names the package itself.
    """
    parts = list(Path(path).parts)
    anchor = 0
    for i, part in enumerate(parts):
        if part == "repro":
            anchor = i
            break
    else:
        anchor = len(parts) - 1
    tail = [p for p in parts[anchor:]]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail) if tail else Path(path).stem


def parse_source(
    source: str,
    path: PathLike = "<string>",
    module_parts: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> ParsedModule:
    """Parse one module's text into a shared :class:`ParsedModule`."""
    path_str = str(path)
    if module_parts is None:
        module_parts = Path(path_str).parts
    tree = ast.parse(source, filename=path_str)
    return ParsedModule(
        path=path_str,
        name=name if name is not None else module_name_for(path_str),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        module_parts=tuple(module_parts),
    )


def parse_file(path: PathLike) -> ParsedModule:
    file_path = Path(path)
    return parse_source(file_path.read_text(), path=file_path)


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files and directory trees into a sorted .py file list."""
    files: List[Path] = []
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(entry_path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        else:
            files.append(entry_path)
    return files


def load_modules(paths: Sequence[PathLike]) -> List[ParsedModule]:
    """Parse every Python file under ``paths``, once each.

    The returned list is sorted by path; a ``SyntaxError`` propagates
    with the offending filename attached (the CLI turns it into exit
    code 2).
    """
    return [parse_file(file_path) for file_path in iter_python_files(paths)]


def modules_by_name(modules: Sequence[ParsedModule]) -> Dict[str, ParsedModule]:
    """Index modules by dotted name (later duplicates win, like sys.modules)."""
    return {module.name: module for module in modules}
