"""Project symbol/import/call-graph builder for whole-program analysis.

The flow passes in :mod:`repro.check.analyze` need three things the
per-file lint cannot see:

* **symbol resolution across modules** — what ``register`` means inside
  ``experiments/ext_mixed.py`` (it is ``repro.experiments.base.register``,
  possibly re-exported through one or more ``__init__.py`` hops);
* **a call graph** — which functions a process-pool worker can reach,
  including functions that are never *called* by name but escape by
  reference into registry tables (``SweepSpec(run_unit=...)``,
  ``_OPTION_FLAGS`` validators, ``pool.submit(fn, ...)``);
* **the repo's registration idioms, reified** — the experiment registry
  (``register(..., options=...)`` / ``attach_sweep``/``SweepSpec``), the
  CLI option-flag table, and pool submission sites, so passes can
  reason about cache keys and worker-reachable state without executing
  any project code.

Everything here is static: modules come in as
:class:`~repro.check.parse.ParsedModule` objects (parsed exactly once,
see :mod:`repro.check.parse`) and nothing is imported or run.
Resolution is best-effort by design — an unresolvable name yields no
edge rather than an error, and import cycles are cut with a visited
set — because the passes built on top are linters, not compilers: a
missed edge costs a missed finding, never a crash.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.parse import ParsedModule, modules_by_name

#: Attribute names that stand for dynamic dispatch through the
#: experiment registry: a reachable function touching one of these
#: reaches every function registered in the corresponding table.
_REGISTRY_ATTRS = {
    "fn": "drivers",          # Experiment.fn(...) — run_experiment's dispatch
    "units": "units",         # SweepSpec.units(...)
    "run_unit": "run_units",  # SweepSpec.run_unit(...)
    "combine": "combines",    # SweepSpec.combine(...)
}

#: Constructor calls whose module-level result is a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
}


@dataclass
class FunctionInfo:
    """One function or method, addressable as ``module:Qual.name``."""

    qualname: str
    module: str
    local_name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    lineno: int
    params: List[str] = field(default_factory=list)
    kwonly: List[str] = field(default_factory=list)
    defaults: Dict[str, ast.expr] = field(default_factory=dict)
    #: Attribute names read anywhere in the body (registry-dispatch map).
    attrs_used: Set[str] = field(default_factory=set)

    @property
    def all_params(self) -> List[str]:
        return self.params + self.kwonly


@dataclass
class ModuleSymbols:
    """Per-module top-level namespace, statically recovered."""

    name: str
    #: local name -> canonical dotted target ("repro.obs.events.TASK",
    #: "numpy", ...). ImportFrom targets include the imported symbol.
    imports: Dict[str, str] = field(default_factory=dict)
    #: local (possibly dotted, for methods) name -> FunctionInfo.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level simple assignments: name -> value expression.
    assigns: Dict[str, ast.expr] = field(default_factory=dict)
    #: module-level names bound to mutable container displays/constructors.
    mutables: Dict[str, ast.stmt] = field(default_factory=dict)
    #: class names defined at top level (for constructor-call resolution).
    classes: Set[str] = field(default_factory=set)


@dataclass
class ExperimentRecord:
    """One ``register(...)`` site."""

    experiment_id: str
    module: str
    lineno: int
    col: int
    options: Tuple[str, ...] = ()
    driver: Optional[str] = None  # qualname


@dataclass
class SweepRecord:
    """One ``attach_sweep(id, SweepSpec(...))`` site."""

    experiment_id: str
    module: str
    lineno: int
    col: int
    takes_options: bool = False
    units: Optional[str] = None      # qualnames
    run_unit: Optional[str] = None
    combine: Optional[str] = None


@dataclass
class OptionFlag:
    """One row of a CLI ``_OPTION_FLAGS`` table."""

    flag: str
    option: str
    module: str
    lineno: int
    col: int
    validator: Optional[str] = None  # qualname


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ProjectGraph:
    """Symbols, call/ref edges, and registry tables for a module set."""

    def __init__(self, modules: Sequence[ParsedModule]):
        self.modules: Dict[str, ParsedModule] = modules_by_name(modules)
        self.symbols: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: caller qualname (or "module-name::<module>") -> callee qualnames;
        #: includes by-reference escapes (callbacks, tables, submit args).
        self.edges: Dict[str, Set[str]] = {}
        self.experiments: Dict[str, ExperimentRecord] = {}
        self.sweeps: Dict[str, SweepRecord] = {}
        self.option_flags: List[OptionFlag] = []
        #: Functions handed to a process pool via ``<x>.submit(fn, ...)``.
        self.pool_roots: Set[str] = set()
        for module in self.modules.values():
            self._collect_symbols(module)
        for module in self.modules.values():
            self._collect_edges(module)
        self._link_sweep_drivers()

    # -- symbol collection ---------------------------------------------------

    def _collect_symbols(self, module: ParsedModule) -> None:
        syms = ModuleSymbols(name=module.name)
        self.symbols[module.name] = syms
        for node in module.tree.body:
            self._collect_statement(module, syms, node, prefix="")

    def _collect_statement(
        self, module: ParsedModule, syms: ModuleSymbols, node: ast.stmt, prefix: str
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                syms.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = self._import_base(module, node)
            if base is None:
                return
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                syms.imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local = f"{prefix}{node.name}"
            info = self._function_info(module, local, node)
            syms.functions[local] = info
            self.functions[info.qualname] = info
            for decorator in node.decorator_list:
                self._maybe_register(module, decorator, info)
        elif isinstance(node, ast.ClassDef) and not prefix:
            syms.classes.add(node.name)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._collect_statement(
                        module, syms, item, prefix=f"{node.name}."
                    )
        elif isinstance(node, ast.Assign) and not prefix:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    syms.assigns[target.id] = node.value
                    if self._is_mutable_value(node.value):
                        syms.mutables[target.id] = node
        elif isinstance(node, ast.AnnAssign) and not prefix:
            if isinstance(node.target, ast.Name) and node.value is not None:
                syms.assigns[node.target.id] = node.value
                if self._is_mutable_value(node.value):
                    syms.mutables[node.target.id] = node

    def _import_base(self, module: ParsedModule, node: ast.ImportFrom) -> Optional[str]:
        if not node.level:
            return node.module or ""
        # Relative import: anchor at the module's package.
        pkg = module.name.split(".")
        if not module.is_package_init:
            pkg = pkg[:-1]
        up = node.level - 1
        if up > len(pkg):
            return None
        base_parts = pkg[: len(pkg) - up] if up else pkg
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    @staticmethod
    def _is_mutable_value(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
                return True
        return False

    def _function_info(
        self, module: ParsedModule, local: str, node: ast.AST
    ) -> FunctionInfo:
        args = node.args
        params = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        kwonly = [a.arg for a in args.kwonlyargs]
        defaults: Dict[str, ast.expr] = {}
        positional = list(args.posonlyargs) + list(args.args)
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            defaults[arg.arg] = default
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                defaults[arg.arg] = kw_default
        attrs = {
            sub.attr for sub in ast.walk(node) if isinstance(sub, ast.Attribute)
        }
        return FunctionInfo(
            qualname=f"{module.name}:{local}",
            module=module.name,
            local_name=local,
            node=node,
            lineno=node.lineno,
            params=params,
            kwonly=kwonly,
            defaults=defaults,
            attrs_used=attrs,
        )

    # -- name resolution -----------------------------------------------------

    def resolve_function(
        self, module_name: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[FunctionInfo]:
        """Resolve a (possibly dotted) local name to a project function.

        Follows import chains and ``__init__.py`` re-exports; cycles in
        the import graph are cut with a visited set, so mutually
        importing modules resolve without recursing forever.
        """
        seen = _seen if _seen is not None else set()
        if (module_name, name) in seen:
            return None
        seen.add((module_name, name))
        syms = self.symbols.get(module_name)
        if syms is None:
            return None
        if name in syms.functions:
            return syms.functions[name]
        head, _, tail = name.partition(".")
        if head in syms.imports:
            target = syms.imports[head]
            full = f"{target}.{tail}" if tail else target
            return self._resolve_dotted(full, seen)
        return None

    def _resolve_dotted(
        self, dotted: str, seen: Set[Tuple[str, str]]
    ) -> Optional[FunctionInfo]:
        """Resolve an absolute dotted path against the module set."""
        parts = dotted.split(".")
        # Longest module-name prefix wins; the remainder is looked up
        # inside that module (possibly another import to chase).
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod in self.symbols:
                rest = ".".join(parts[cut:])
                return self.resolve_function(mod, rest, seen)
        return None

    def resolve_constant(
        self, module_name: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[ast.expr]:
        """Resolve a dotted name to a module-level assigned expression."""
        seen = _seen if _seen is not None else set()
        if (module_name, name) in seen:
            return None
        seen.add((module_name, name))
        syms = self.symbols.get(module_name)
        if syms is None:
            return None
        if name in syms.assigns:
            return syms.assigns[name]
        head, _, tail = name.partition(".")
        if head in syms.imports:
            target = syms.imports[head]
            full = f"{target}.{tail}" if tail else target
            parts = full.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                mod = ".".join(parts[:cut])
                if mod in self.symbols:
                    return self.resolve_constant(mod, ".".join(parts[cut:]), seen)
        return None

    def resolve_mutable(
        self, module_name: str, name: str
    ) -> Optional[Tuple[str, str, ast.stmt]]:
        """Resolve ``name`` to a module-level mutable binding.

        Returns ``(owning_module, owning_name, assign_node)`` — chasing
        imports, so ``from state import CACHE`` mutations resolve to the
        defining module.
        """
        seen: Set[Tuple[str, str]] = set()
        current_module, current_name = module_name, name
        while (current_module, current_name) not in seen:
            seen.add((current_module, current_name))
            syms = self.symbols.get(current_module)
            if syms is None:
                return None
            if current_name in syms.mutables:
                return current_module, current_name, syms.mutables[current_name]
            if current_name in syms.assigns:
                return None  # bound, but not to a mutable display
            if current_name in syms.imports:
                target = syms.imports[current_name]
                parts = target.split(".")
                for cut in range(len(parts) - 1, 0, -1):
                    mod = ".".join(parts[:cut])
                    if mod in self.symbols and cut < len(parts):
                        current_module = mod
                        current_name = ".".join(parts[cut:])
                        break
                else:
                    return None
                continue
            return None
        return None

    # -- registry extraction -------------------------------------------------

    def _resolves_to(self, module: ParsedModule, node: ast.expr, target: str) -> bool:
        """True when a call's func resolves to ``target`` (a function
        name like ``register``, matched against the tail of the resolved
        dotted path or the bare local name)."""
        name = dotted_name(node)
        if name is None:
            return False
        if name.split(".")[-1] != target:
            return False
        return True

    def _maybe_register(
        self, module: ParsedModule, decorator: ast.expr, info: FunctionInfo
    ) -> None:
        if not isinstance(decorator, ast.Call):
            return
        if not self._resolves_to(module, decorator.func, "register"):
            return
        experiment_id = self._literal_str(module, decorator.args[0]) if decorator.args else None
        if experiment_id is None:
            return
        options: Tuple[str, ...] = ()
        for kw in decorator.keywords:
            if kw.arg == "options":
                options = self._literal_str_tuple(module, kw.value)
        if len(decorator.args) >= 3:
            options = self._literal_str_tuple(module, decorator.args[2])
        self.experiments[experiment_id] = ExperimentRecord(
            experiment_id=experiment_id,
            module=module.name,
            lineno=decorator.lineno,
            col=decorator.col_offset,
            options=options,
            driver=info.qualname,
        )

    def _literal_str(self, module: ParsedModule, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        name = dotted_name(node)
        if name is not None:
            resolved = self.resolve_constant(module.name, name)
            if isinstance(resolved, ast.Constant) and isinstance(resolved.value, str):
                return resolved.value
        return None

    def _literal_str_tuple(self, module: ParsedModule, node: ast.expr) -> Tuple[str, ...]:
        if isinstance(node, (ast.Tuple, ast.List)):
            out = []
            for element in node.elts:
                value = self._literal_str(module, element)
                if value is not None:
                    out.append(value)
            return tuple(out)
        return ()

    def _maybe_attach_sweep(self, module: ParsedModule, call: ast.Call) -> None:
        if not self._resolves_to(module, call.func, "attach_sweep"):
            return
        if len(call.args) < 2:
            return
        experiment_id = self._literal_str(module, call.args[0])
        if experiment_id is None:
            return
        spec = call.args[1]
        record = SweepRecord(
            experiment_id=experiment_id,
            module=module.name,
            lineno=call.lineno,
            col=call.col_offset,
        )
        if isinstance(spec, ast.Call) and self._resolves_to(module, spec.func, "SweepSpec"):
            self._fill_sweep_from_spec(module, spec, record)
        else:
            name = dotted_name(spec)
            if name is not None:
                resolved = self.resolve_constant(module.name, name)
                if isinstance(resolved, ast.Call) and self._resolves_to(
                    module, resolved.func, "SweepSpec"
                ):
                    self._fill_sweep_from_spec(module, resolved, record)
        self.sweeps[experiment_id] = record

    def _fill_sweep_from_spec(
        self, module: ParsedModule, spec: ast.Call, record: SweepRecord
    ) -> None:
        slots = ["units", "run_unit", "combine"]
        values: Dict[str, ast.expr] = {}
        for i, arg in enumerate(spec.args[: len(slots)]):
            values[slots[i]] = arg
        for kw in spec.keywords:
            if kw.arg in slots:
                values[kw.arg] = kw.value
            elif kw.arg == "takes_options":
                record.takes_options = bool(
                    isinstance(kw.value, ast.Constant) and kw.value.value
                )
        for slot, value in values.items():
            name = dotted_name(value)
            if name is None:
                continue
            info = self.resolve_function(module.name, name)
            if info is not None:
                setattr(record, slot, info.qualname)

    def _maybe_option_flags(self, module: ParsedModule, node: ast.Assign) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "_OPTION_FLAGS" not in targets:
            return
        if not isinstance(node.value, (ast.Tuple, ast.List)):
            return
        for row in node.value.elts:
            if not isinstance(row, (ast.Tuple, ast.List)) or len(row.elts) < 2:
                continue
            flag = self._literal_str(module, row.elts[0])
            option = self._literal_str(module, row.elts[1])
            if flag is None or option is None:
                continue
            validator = None
            if len(row.elts) >= 3:
                name = dotted_name(row.elts[2])
                if name is not None:
                    info = self.resolve_function(module.name, name)
                    if info is not None:
                        validator = info.qualname
            self.option_flags.append(
                OptionFlag(
                    flag=flag,
                    option=option,
                    module=module.name,
                    lineno=row.lineno,
                    col=row.col_offset,
                    validator=validator,
                )
            )

    def _link_sweep_drivers(self) -> None:
        """Ref edges from each sweep/driver record into the call graph."""
        for record in self.sweeps.values():
            owner = f"{record.module}::<module>"
            for slot in ("units", "run_unit", "combine"):
                target = getattr(record, slot)
                if target is not None:
                    self.edges.setdefault(owner, set()).add(target)

    # -- edge collection -----------------------------------------------------

    def _collect_edges(self, module: ParsedModule) -> None:
        syms = self.symbols[module.name]
        module_scope = f"{module.name}::<module>"

        def add_edge(scope: str, callee: FunctionInfo) -> None:
            self.edges.setdefault(scope, set()).add(callee.qualname)

        def walk(node: ast.AST, scope: str) -> None:
            for child in ast.iter_child_nodes(node):
                child_scope = scope
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = self._owning_info(module, child)
                    child_scope = info.qualname if info is not None else scope
                if isinstance(child, ast.Call):
                    self._record_call(module, child, scope, add_edge)
                elif isinstance(child, (ast.Name, ast.Attribute)) and isinstance(
                    getattr(child, "ctx", None), ast.Load
                ):
                    # Escaping references: callbacks, tables, submit args.
                    name = dotted_name(child)
                    if name is not None and not isinstance(
                        getattr(child, "_graph_parent_call", None), ast.Call
                    ):
                        info = self.resolve_function(module.name, name)
                        if info is not None:
                            add_edge(scope, info)
                    walk(child, scope)
                    continue
                walk(child, child_scope)

        # Registry tables and sweep attachments live at module top level.
        for node in module.tree.body:
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                self._maybe_attach_sweep(module, node.value)
            elif isinstance(node, ast.Assign):
                self._maybe_option_flags(module, node)
                if isinstance(node.value, ast.Call):
                    self._maybe_attach_sweep(module, node.value)

        # Tag call funcs so the reference walk does not double-count
        # them (a called name is an edge via _record_call already).
        for sub in ast.walk(module.tree):
            if isinstance(sub, ast.Call):
                sub.func._graph_parent_call = sub  # type: ignore[attr-defined]

        walk(module.tree, module_scope)
        del syms  # (symbols already collected; kept for symmetry)

    def _owning_info(
        self, module: ParsedModule, node: ast.AST
    ) -> Optional[FunctionInfo]:
        for info in self.symbols[module.name].functions.values():
            if info.node is node:
                return info
        return None

    def _record_call(
        self, module: ParsedModule, call: ast.Call, scope: str, add_edge
    ) -> None:
        name = dotted_name(call.func)
        if name is not None:
            info = self.resolve_function(module.name, name)
            if info is not None:
                add_edge(scope, info)
        # Pool submission: `<pool>.submit(fn, ...)` makes fn (and its
        # closure) run in a worker process.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "submit"
            and call.args
        ):
            target = dotted_name(call.args[0])
            if target is not None:
                info = self.resolve_function(module.name, target)
                if info is not None:
                    self.pool_roots.add(info.qualname)

    # -- reachability --------------------------------------------------------

    def reachable_from(
        self, roots: Sequence[str], follow_registry: bool = True
    ) -> Set[str]:
        """Qualnames reachable from ``roots`` over call/ref edges.

        With ``follow_registry`` (the default), dynamic dispatch through
        the experiment registry is modelled: a reachable function that
        touches ``.fn`` reaches every registered driver, and one that
        touches ``.units``/``.run_unit``/``.combine`` reaches every
        sweep's corresponding callback — the tables are data, but the
        analysis treats them as edges.
        """
        seen: Set[str] = set()
        frontier = [root for root in roots if root in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    frontier.append(callee)
            info = self.functions.get(current)
            if info is None or not follow_registry:
                continue
            extra: List[Optional[str]] = []
            if "fn" in info.attrs_used:
                extra.extend(rec.driver for rec in self.experiments.values())
            for attr, kind in _REGISTRY_ATTRS.items():
                if attr == "fn" or attr not in info.attrs_used:
                    continue
                slot = {"units": "units", "run_units": "run_unit",
                        "combines": "combine"}[kind]
                extra.extend(getattr(rec, slot) for rec in self.sweeps.values())
            for qualname in extra:
                if qualname is not None and qualname not in seen:
                    frontier.append(qualname)
        return seen


def build_graph(modules: Sequence[ParsedModule]) -> ProjectGraph:
    """Build the project graph over an already-parsed module set."""
    return ProjectGraph(modules)
