"""The determinism-lint rule table.

Every result this reproduction publishes rests on the discrete-event
simulation being *deterministic*: same seed, same bytes, on every
machine and under every ``--jobs`` fan-out.  The rules below encode the
repo-specific ways that property has been (or could be) broken — each
one is a hazard class, not a style preference, and each carries the
rationale a reviewer needs to judge a waiver.

Rules are identified ``RTX0NN`` (ruff-style).  A finding can be waived
on its line with an inline comment::

    t0 = time.perf_counter()  # repro-check: allow RTX001

Waivers are for the rare sites where the hazard is the point (e.g. the
wall-clock telemetry layer adds a new module outside the allowlist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

#: Inline-waiver marker: ``# repro-check: allow RTX001[,RTX002...]``.
WAIVER_MARKER = "repro-check: allow"


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, what it flags, and why it exists."""

    rule_id: str
    name: str
    summary: str
    rationale: str


WALLCLOCK = Rule(
    rule_id="RTX001",
    name="wall-clock",
    summary=(
        "wall-clock read (time.time/perf_counter/monotonic/process_time, "
        "argless datetime.now, datetime.utcnow) outside repro.runtime"
    ),
    rationale=(
        "The simulator owns virtual time; a wall-clock read anywhere in "
        "the model makes results machine- and load-dependent.  Only the "
        "repro.runtime telemetry layer (wall-time reporting, cache "
        "timing) legitimately observes real clocks."
    ),
)

UNSEEDED_RNG = Rule(
    rule_id="RTX002",
    name="unseeded-rng",
    summary=(
        "global `random` module, numpy global-state RNG (np.random.<fn>), "
        "or argless np.random.default_rng() instead of a seeded generator"
    ),
    rationale=(
        "All randomness must flow from repro.sim.rng.RngStreams (or an "
        "explicitly seeded Generator) so that runs are reproducible and "
        "scheduler comparisons stay paired.  Global/unseeded RNG state "
        "silently decouples reruns from the seed."
    ),
)

UNORDERED_ITERATION = Rule(
    rule_id="RTX003",
    name="unordered-iteration",
    summary=(
        "iterating a set display/set() call or dict .keys()/.values()/"
        ".items() view without sorted() in scheduling modules "
        "(repro.sched, repro.sim)"
    ),
    rationale=(
        "Scheduling decisions and heap pushes must consume inputs in a "
        "defined order.  Set iteration order varies with insertion "
        "history and hash salting; dict views encode insertion order, "
        "which refactors change silently.  An explicit sorted() key "
        "makes the order part of the contract."
    ),
)

US_UNIT_MIXING = Rule(
    rule_id="RTX004",
    name="us-unit-mixing",
    summary=(
        "microsecond field/argument (`*_us`) annotated `int`, int-literal "
        "`*_US` constant, or floor division on a `*_us` value"
    ),
    rationale=(
        "Virtual time is float microseconds end to end; an int-typed "
        "timestamp or a floor division truncates sub-microsecond "
        "arithmetic differently across code paths, which breaks the "
        "byte-identity guarantees between serial and parallel runs."
    ),
)

MUTABLE_DEFAULT = Rule(
    rule_id="RTX005",
    name="mutable-default",
    summary="mutable default argument (list/dict/set display or constructor)",
    rationale=(
        "A mutable default is shared across calls: state leaks between "
        "scheduler runs and between experiments executed in the same "
        "worker process, making results depend on execution history."
    ),
)

ENV_READ = Rule(
    rule_id="RTX006",
    name="env-read",
    summary=(
        "os.environ / os.getenv read outside repro.runtime and repro.check"
    ),
    rationale=(
        "Environment variables are per-machine, per-shell state: a model "
        "or scheduler that consults one produces results the seed cannot "
        "reproduce on another host.  Only the repro.runtime configuration "
        "layer (cache locations) and repro.check's own sanitizer — which "
        "exists to inspect the environment — may read it; everything else "
        "takes configuration as explicit arguments."
    ),
)

CACHE_KEY_COMPLETENESS = Rule(
    rule_id="RTX007",
    name="cache-key-completeness",
    summary=(
        "experiment option (register(options=)/CLI flag) that does not "
        "flow into WorkUnit.params, or a CLI flag/option pair with no "
        "counterpart"
    ),
    rationale=(
        "The result cache is keyed by (experiment, unit key, scale, "
        "seed, WorkUnit.params).  An option that changes what a sweep "
        "unit computes but never lands in its params produces silently "
        "stale cache hits: two runs with different option values share "
        "a key.  The analyzer traces each declared option from the CLI "
        "flag table through SweepSpec.units into the params dict, so "
        "the key provably covers every input."
    ),
)

PARALLEL_SHARED_STATE = Rule(
    rule_id="RTX008",
    name="parallel-shared-state",
    summary=(
        "module-level mutable (or default-argument alias) mutated inside "
        "a function reachable from a process-pool submission"
    ),
    rationale=(
        "Pool workers are forked and reused across work units: state "
        "mutated in one unit leaks into the next unit the same worker "
        "executes, so results depend on which worker ran what — the "
        "byte-identity killer that serial runs never exhibit.  Worker-"
        "reachable code (including experiment drivers and sweep "
        "callbacks reached through the registry) must not write module "
        "globals or shared default arguments."
    ),
)

UNIT_FLOW = Rule(
    rule_id="RTX009",
    name="unit-flow",
    summary=(
        "time-unit mixing found by dataflow: a µs/ms/seconds-typed value "
        "(inferred through assignments and call boundaries) combined, "
        "compared, passed, or returned as a different unit"
    ),
    rationale=(
        "RTX004 only sees lexical `*_us` names; real unit bugs flow "
        "through unsuffixed intermediates and across function calls "
        "(`budget = mix.delay_budget_ms` ... `deadline_us = air + "
        "budget`).  Propagating unit types through assignments, "
        "arithmetic, and resolved call/return boundaries catches the "
        "mix where it happens, not just where it is named."
    ),
)

TRACE_EMIT_CONFORMANCE = Rule(
    rule_id="RTX010",
    name="trace-emit-conformance",
    summary=(
        "trace emit site whose kind or args keys fall outside the typed "
        "TraceEvent vocabulary (repro.obs.events), or an emit-helper "
        "call with an unknown keyword"
    ),
    rationale=(
        "Every downstream consumer — the exporters, the sanitizer, "
        "tracestats, the replay validator — dispatches on the typed "
        "kind/field vocabulary in repro.obs.events.  An emit site "
        "inventing a kind or misspelling an args key produces events "
        "the pipeline silently drops or mis-aggregates; checking each "
        "site against EVENT_KINDS/EVENT_ARG_FIELDS keeps the stream "
        "schema-true at the source."
    ),
)

#: Every rule, in id order — the table ``repro.check rules`` renders.
RULES: Tuple[Rule, ...] = (
    WALLCLOCK,
    UNSEEDED_RNG,
    UNORDERED_ITERATION,
    US_UNIT_MIXING,
    MUTABLE_DEFAULT,
    ENV_READ,
    CACHE_KEY_COMPLETENESS,
    PARALLEL_SHARED_STATE,
    UNIT_FLOW,
    TRACE_EMIT_CONFORMANCE,
)

#: Rules implemented by the per-file lint (``repro.check lint``).
LINT_RULE_IDS: Tuple[str, ...] = (
    "RTX001", "RTX002", "RTX003", "RTX004", "RTX005", "RTX006",
)

#: Rules implemented by the whole-program analyzer (``repro.check analyze``).
ANALYZE_RULE_IDS: Tuple[str, ...] = ("RTX007", "RTX008", "RTX009", "RTX010")

RULES_BY_ID = {rule.rule_id: rule for rule in RULES}

#: Module-path fragments (as ``(parent, child)`` directory pairs) whose
#: files may read wall clocks: the telemetry layer reports real wall
#: time by design.
WALLCLOCK_ALLOWED_PARTS: Tuple[Tuple[str, str], ...] = (("repro", "runtime"),)

#: Modules where iteration order feeds scheduling decisions; RTX003
#: applies only here (elsewhere an unordered loop cannot perturb the
#: simulated timeline).
ORDERED_MODULE_PARTS: Tuple[Tuple[str, str], ...] = (
    ("repro", "sched"),
    ("repro", "sim"),
)

#: Modules that may read the process environment: runtime configuration
#: (cache dirs) and the sanitizer that audits the environment itself.
ENV_READ_ALLOWED_PARTS: Tuple[Tuple[str, str], ...] = (
    ("repro", "runtime"),
    ("repro", "check"),
)


def path_matches(path_parts: Sequence[str], pairs: Sequence[Tuple[str, str]]) -> bool:
    """True when ``path_parts`` contains any adjacent directory pair."""
    for parent, child in pairs:
        for a, b in zip(path_parts, path_parts[1:]):
            if a == parent and b == child:
                return True
    return False


def rule_table() -> str:
    """Ruff-style rule listing: id, name, one-line summary."""
    lines = []
    for rule in RULES:
        lines.append(f"{rule.rule_id}  {rule.name:22s}  {rule.summary}")
    return "\n".join(lines)


def explain(rule_id: str) -> str:
    """Full description of one rule (id, summary, rationale)."""
    rule = RULES_BY_ID.get(rule_id.upper())
    if rule is None:
        known = ", ".join(r.rule_id for r in RULES)
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})")
    return (
        f"{rule.rule_id} ({rule.name})\n"
        f"  flags: {rule.summary}\n"
        f"  why:   {rule.rationale}"
    )
