"""Provisioning and placement: peak vs statistically multiplexed cores.

Definitions, with per-subframe processing demand expressed in *core
utilization* (processing time / subframe period):

* **peak provisioning** — each basestation independently reserves
  ``ceil(q-quantile of its own demand)`` cores; the paper's critique of
  per-basestation hardware ("provisioned for their peak usage");
* **pooled provisioning** — one reservation sized by the same quantile
  of the *aggregate* demand of all basestations on the node; cells'
  fluctuations are rarely simultaneous, so the aggregate quantile is
  far below the sum of individual peaks (CloudIQ's ~22% saving [15]).

The demand samples come from the same workload pipeline the schedulers
use (load trace -> MCS -> Eq. (1) time), so provisioning and scheduling
reason about identical workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.constants import SUBFRAME_US
from repro.sched.base import SubframeJob


def _utilization_matrix(jobs: Sequence[SubframeJob]) -> Dict[int, np.ndarray]:
    """Per-BS arrays of core utilization per subframe."""
    per_bs: Dict[int, List[float]] = {}
    for job in jobs:
        demand = job.serial_time_us / SUBFRAME_US
        per_bs.setdefault(job.subframe.bs_id, []).append(demand)
    return {bs: np.array(values) for bs, values in per_bs.items()}


def peak_cores_required(jobs: Sequence[SubframeJob], quantile: float = 0.999) -> int:
    """Cores under per-basestation peak provisioning.

    Every basestation reserves enough cores for the ``quantile`` of its
    own demand, independently; reservations are integral (a core cannot
    be split across isolation boundaries).
    """
    _check_quantile(quantile)
    per_bs = _utilization_matrix(jobs)
    total = 0
    for demand in per_bs.values():
        total += max(1, math.ceil(float(np.quantile(demand, quantile))))
    return total


def pooled_cores_required(jobs: Sequence[SubframeJob], quantile: float = 0.999) -> int:
    """Cores when all basestations share one statistical reservation.

    The aggregate is formed subframe-by-subframe, so every basestation
    must contribute the same number of demand samples; truncating a
    longer series would silently bias the aggregate quantile low.
    """
    _check_quantile(quantile)
    per_bs = _utilization_matrix(jobs)
    if not per_bs:
        return 0
    lengths = {bs: d.size for bs, d in per_bs.items()}
    if len(set(lengths.values())) > 1:
        detail = ", ".join(f"bs{bs}={n}" for bs, n in sorted(lengths.items()))
        raise ValueError(
            f"per-basestation demand series differ in length ({detail}); "
            "pooled aggregation needs one sample per basestation per subframe"
        )
    aggregate = np.sum(list(per_bs.values()), axis=0)
    return max(1, math.ceil(float(np.quantile(aggregate, quantile))))


def pooling_savings(jobs: Sequence[SubframeJob], quantile: float = 0.999) -> float:
    """Fractional compute saving of pooling over peak provisioning."""
    peak = peak_cores_required(jobs, quantile)
    pooled = pooled_cores_required(jobs, quantile)
    if peak == 0:
        return 0.0
    return 1.0 - pooled / peak


def demand_weights(
    jobs: Sequence[SubframeJob], quantile: float = 0.999
) -> Dict[int, float]:
    """Per-basestation placement weight: the ``quantile`` of its demand.

    This is the additive per-cell weight both placers (greedy FFD and
    the MILP baseline) pack against a node's core budget.  Note the
    conservatism: the sum of per-cell quantiles overestimates the
    quantile of the summed demand (cells' fluctuations are rarely
    simultaneous), so weight-packed nodes are provisioned *above* their
    pooled requirement — the price of reducing placement to bin packing.
    """
    _check_quantile(quantile)
    per_bs = _utilization_matrix(jobs)
    return {
        bs: float(np.quantile(demand, quantile))
        for bs, demand in sorted(per_bs.items())
    }


@dataclass(frozen=True)
class NodePlacement:
    """Assignment of basestations to compute nodes."""

    node_of: Dict[int, int]
    node_count: int

    def basestations_on(self, node: int) -> List[int]:
        return sorted(bs for bs, n in self.node_of.items() if n == node)


def place_by_weights(
    weights: Mapping[int, float], cores_per_node: float
) -> NodePlacement:
    """First-fit-decreasing bin packing of explicit per-cell weights.

    Cells are visited heaviest-first with ties broken by basestation id
    — *not* by mapping insertion order, which would make the placement
    depend on the order the caller enumerated its jobs in (a
    nondeterminism `repro.check` exists to forbid).
    """
    if cores_per_node <= 0:
        raise ValueError("cores_per_node must be positive")
    if not weights:
        return NodePlacement(node_of={}, node_count=0)
    for bs, weight in sorted(weights.items()):
        if weight > cores_per_node:
            raise ValueError(
                f"basestation {bs} needs {weight:.2f} cores, node has {cores_per_node}"
            )
    node_of: Dict[int, int] = {}
    node_load: List[float] = []
    for bs in sorted(weights, key=lambda b: (-weights[b], b)):
        placed = False
        for node, load in enumerate(node_load):
            if load + weights[bs] <= cores_per_node:
                node_of[bs] = node
                node_load[node] += weights[bs]
                placed = True
                break
        if not placed:
            node_of[bs] = len(node_load)
            node_load.append(weights[bs])
    return NodePlacement(node_of=node_of, node_count=len(node_load))


def place_basestations(
    jobs: Sequence[SubframeJob],
    cores_per_node: int,
    quantile: float = 0.999,
) -> NodePlacement:
    """First-fit-decreasing placement of basestations onto nodes.

    Each basestation's weight is the ``quantile`` of its demand; a node
    accepts a cell while the *sum of weights* fits its core budget —
    i.e. nodes are provisioned statistically, not by per-cell peaks.
    This is the offline half of the paper's separation principle.
    """
    if cores_per_node < 1:
        raise ValueError("cores_per_node must be >= 1")
    return place_by_weights(demand_weights(jobs, quantile), cores_per_node)


def _check_quantile(quantile: float) -> None:
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
