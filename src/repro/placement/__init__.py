"""Basestation-to-node placement and resource-pooling analysis.

The paper adopts the separation principle (sec. 1, Problem Statement):
assigning basestations to compute nodes is decoupled from scheduling a
node's subframes.  This subpackage implements the first half — the
CloudIQ-style provisioning question "how many cores does a set of
basestations need?" — and reproduces the pooling argument the paper
cites: statistical multiplexing of fluctuating cells saves on the order
of 22% of compute relative to per-basestation peak provisioning [15].
"""

from repro.placement.optimal import (
    OptimalPlacement,
    optimal_place_by_weights,
    optimal_placement,
    placement_gap,
)
from repro.placement.pool import (
    NodePlacement,
    demand_weights,
    peak_cores_required,
    place_basestations,
    place_by_weights,
    pooled_cores_required,
    pooling_savings,
)

__all__ = [
    "NodePlacement",
    "OptimalPlacement",
    "demand_weights",
    "optimal_place_by_weights",
    "optimal_placement",
    "peak_cores_required",
    "place_basestations",
    "place_by_weights",
    "placement_gap",
    "pooled_cores_required",
    "pooling_savings",
]
