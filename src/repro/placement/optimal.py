"""Optimization-based placement baseline: bin packing as a MILP.

The greedy first-fit-decreasing placer (:func:`repro.placement.pool.
place_by_weights`) is fast but only 11/9-OPT in the worst case.  This
module poses the same question — pack per-cell demand weights onto the
fewest ``cores_per_node``-capacity nodes — as an exact mixed-integer
program, giving the fleet sweeps an *optimal* baseline to report the
greedy placer's gap against:

    minimize    sum_j y_j
    subject to  sum_j x_ij = 1                 (every cell placed once)
                sum_i w_i x_ij <= C * y_j      (node capacity)
                x_ij, y_j in {0, 1}

with two standard symmetry reductions that keep branch-and-bound off
the exponentially many relabelings of an identical solution: cell ``i``
(in heaviest-first order) may only use nodes ``0..i``, and node ``j+1``
can only be open when node ``j`` is.

Solved with ``scipy.optimize.milp`` (HiGHS).  cvxpy is deliberately not
used — it is absent from the floor environment; scipy >= 1.9 ships the
MILP interface.  The import is lazy so everything else in
``repro.placement`` works without scipy installed.

Determinism: the model is built cell-by-cell in sorted-id order, HiGHS
is deterministic for a fixed model and library version, and the
resulting assignment is canonicalized (nodes relabeled by their
smallest cell id) before it is returned — so serial and ``--jobs N``
fleet sweeps agree byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.placement.pool import NodePlacement, demand_weights, place_by_weights
from repro.sched.base import SubframeJob

#: Feasibility slack when auditing the solver's (floating-point) packing.
_CAPACITY_EPS = 1e-6


@dataclass(frozen=True)
class OptimalPlacement:
    """An exact placement plus the solver evidence behind it.

    ``lower_bound`` is the solver's dual bound on the node count
    (rounded up — the objective is integral); ``solver_gap`` the
    relative gap HiGHS stopped at (0.0 when proved optimal);
    ``bnb_nodes`` the branch-and-bound nodes explored.
    """

    placement: NodePlacement
    optimal: bool
    lower_bound: int
    solver_gap: float
    bnb_nodes: int

    @property
    def node_count(self) -> int:
        return self.placement.node_count


def optimal_place_by_weights(
    weights: Mapping[int, float],
    cores_per_node: float,
    mip_rel_gap: float = 0.0,
) -> OptimalPlacement:
    """Minimum-node placement of explicit per-cell weights via MILP.

    ``mip_rel_gap`` > 0 lets the solver stop once the incumbent is
    proved within that relative distance of the bound (still
    deterministic — the stopping rule depends only on the search tree,
    not on wall time; never pass a time limit here for that reason).
    """
    try:
        from scipy import sparse
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError as exc:  # pragma: no cover - scipy is in the test env
        raise RuntimeError(
            "optimal placement needs scipy >= 1.9 (scipy.optimize.milp); "
            "install scipy or use the greedy placer"
        ) from exc

    if cores_per_node <= 0:
        raise ValueError("cores_per_node must be positive")
    if not weights:
        return OptimalPlacement(
            placement=NodePlacement(node_of={}, node_count=0),
            optimal=True, lower_bound=0, solver_gap=0.0, bnb_nodes=0,
        )

    # Greedy FFD is always feasible, so its node count bounds the model:
    # no optimal solution opens more nodes than FFD did.
    greedy = place_by_weights(weights, cores_per_node)
    max_nodes = greedy.node_count
    # Heaviest-first cell order (id tie-break) — the order the symmetry
    # reduction "cell i uses nodes 0..i" is valid in.
    cells = sorted(weights, key=lambda b: (-weights[b], b))
    n = len(cells)
    if max_nodes <= 1:
        return OptimalPlacement(
            placement=greedy, optimal=True,
            lower_bound=greedy.node_count, solver_gap=0.0, bnb_nodes=0,
        )

    # Variables: x_ij for j <= min(i, max_nodes-1), then y_j.
    col_of: Dict[Tuple[int, int], int] = {}
    for i in range(n):
        for j in range(min(i, max_nodes - 1) + 1):
            col_of[(i, j)] = len(col_of)
    num_x = len(col_of)
    num_cols = num_x + max_nodes

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    row = 0
    # Every cell placed exactly once.
    for i in range(n):
        for j in range(min(i, max_nodes - 1) + 1):
            rows.append(row)
            cols.append(col_of[(i, j)])
            vals.append(1.0)
        lower.append(1.0)
        upper.append(1.0)
        row += 1
    # Node capacity, tied to the node-open indicator.
    for j in range(max_nodes):
        for i in range(j, n):
            rows.append(row)
            cols.append(col_of[(i, j)])
            vals.append(float(weights[cells[i]]))
        rows.append(row)
        cols.append(num_x + j)
        vals.append(-float(cores_per_node))
        lower.append(-math.inf)
        upper.append(0.0)
        row += 1
    # Open nodes form a prefix: y_{j+1} <= y_j.
    for j in range(max_nodes - 1):
        rows.extend((row, row))
        cols.extend((num_x + j + 1, num_x + j))
        vals.extend((1.0, -1.0))
        lower.append(-math.inf)
        upper.append(0.0)
        row += 1

    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, num_cols)
    )
    objective = np.concatenate([np.zeros(num_x), np.ones(max_nodes)])
    result = milp(
        c=objective,
        constraints=LinearConstraint(matrix, np.array(lower), np.array(upper)),
        integrality=np.ones(num_cols),
        bounds=Bounds(0.0, 1.0),
        options={"mip_rel_gap": float(mip_rel_gap)},
    )
    if result.x is None:
        raise RuntimeError(
            f"optimal placement solve failed (status {result.status}): "
            f"{result.message}"
        )

    assignment = np.asarray(result.x[:num_x])
    node_of: Dict[int, int] = {}
    for i, bs in enumerate(cells):
        choices = [
            j for j in range(min(i, max_nodes - 1) + 1)
            if assignment[col_of[(i, j)]] > 0.5
        ]
        if len(choices) != 1:
            raise RuntimeError(
                f"solver returned a non-assignment for basestation {bs}"
            )
        node_of[bs] = choices[0]
    _audit_capacity(node_of, weights, cores_per_node)

    placement = _canonicalize(node_of)
    solver_gap = float(getattr(result, "mip_gap", 0.0) or 0.0)
    dual_bound = getattr(result, "mip_dual_bound", None)
    lower_bound = (
        int(math.ceil(float(dual_bound) - _CAPACITY_EPS))
        if dual_bound is not None
        else placement.node_count
    )
    return OptimalPlacement(
        placement=placement,
        optimal=solver_gap <= _CAPACITY_EPS,
        lower_bound=min(lower_bound, placement.node_count),
        solver_gap=solver_gap,
        bnb_nodes=int(getattr(result, "mip_node_count", 0) or 0),
    )


def optimal_placement(
    jobs: Sequence[SubframeJob],
    cores_per_node: int,
    quantile: float = 0.999,
    mip_rel_gap: float = 0.0,
) -> OptimalPlacement:
    """MILP counterpart of :func:`~repro.placement.pool.place_basestations`."""
    if cores_per_node < 1:
        raise ValueError("cores_per_node must be >= 1")
    return optimal_place_by_weights(
        demand_weights(jobs, quantile), cores_per_node, mip_rel_gap=mip_rel_gap
    )


def placement_gap(greedy_nodes: int, optimal_nodes: int) -> float:
    """Fractional node overhead of the greedy placement over the optimum."""
    if optimal_nodes <= 0:
        return 0.0
    return greedy_nodes / optimal_nodes - 1.0


def _audit_capacity(
    node_of: Mapping[int, int],
    weights: Mapping[int, float],
    cores_per_node: float,
) -> None:
    loads: Dict[int, float] = {}
    for bs, node in sorted(node_of.items()):
        loads[node] = loads.get(node, 0.0) + float(weights[bs])
    for node, load in sorted(loads.items()):
        if load > cores_per_node + _CAPACITY_EPS:
            raise RuntimeError(
                f"solver packed {load:.6f} cores onto node {node} "
                f"(capacity {cores_per_node})"
            )


def _canonicalize(node_of: Mapping[int, int]) -> NodePlacement:
    """Relabel nodes by their smallest cell id (stable across solvers)."""
    first_cell: Dict[int, int] = {}
    for bs, node in sorted(node_of.items()):
        if node not in first_cell:
            first_cell[node] = bs
    relabel = {
        node: rank
        for rank, node in enumerate(
            sorted(first_cell, key=lambda nd: first_cell[nd])
        )
    }
    return NodePlacement(
        node_of={bs: relabel[node] for bs, node in sorted(node_of.items())},
        node_count=len(relabel),
    )
