"""Calibrating the iteration model from decoder logs.

The iteration model ships with parameters calibrated to the paper's
published figures, but an adopter running this library against their own
PHY (or against the functional chain in :mod:`repro.phy`) can refit it:
log ``(mcs, snr_db, L)`` triples from real decodes and call
:func:`fit_iteration_model`.

The fit estimates the four effort parameters of
:class:`~repro.timing.iterations.IterationModel` by nonlinear least
squares on the per-(mcs, snr) mean iteration counts:

``E[L] = 1 + (Lm - 1) * sigmoid(-(snr - offset - slope*mcs - mid) / scale)``

(steepening above MCS 24 is kept at the model default unless the samples
cover that region densely enough to identify it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.timing.iterations import IterationModel


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted model plus fit diagnostics."""

    model: IterationModel
    rmse: float
    num_bins: int


def _bin_means(
    mcs: np.ndarray, snr_db: np.ndarray, iterations: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Mean L per (mcs, rounded-snr) bin, with bin weights."""
    keys: Dict[Tuple[int, float], list] = {}
    for m, s, l in zip(mcs, snr_db, iterations):
        keys.setdefault((int(m), round(float(s))), []).append(float(l))
    ms, ss, means, weights = [], [], [], []
    for (m, s), values in sorted(keys.items()):
        ms.append(m)
        ss.append(s)
        means.append(np.mean(values))
        weights.append(len(values))
    return (
        np.array(ms, dtype=np.float64),
        np.array(ss, dtype=np.float64),
        np.array(means),
        np.array(weights, dtype=np.float64),
    )


def fit_iteration_model(
    mcs: np.ndarray,
    snr_db: np.ndarray,
    iterations: np.ndarray,
    max_iterations: int = 4,
    reference: Optional[IterationModel] = None,
) -> CalibrationResult:
    """Fit effort parameters to logged decoder iteration counts.

    Requires samples spanning several MCS values and SNRs; raises when
    the data cannot identify the parameters (fewer than 6 bins).
    """
    from scipy.optimize import curve_fit

    mcs = np.asarray(mcs, dtype=np.float64)
    snr_db = np.asarray(snr_db, dtype=np.float64)
    iterations = np.asarray(iterations, dtype=np.float64)
    if not (mcs.size == snr_db.size == iterations.size):
        raise ValueError("mcs, snr_db and iterations must have equal lengths")
    if np.any(iterations < 1) or np.any(iterations > max_iterations):
        raise ValueError(f"iteration counts must lie in [1, {max_iterations}]")

    ms, ss, means, weights = _bin_means(mcs, snr_db, iterations)
    if ms.size < 6:
        raise ValueError("need at least 6 (mcs, snr) bins to fit 4 parameters")

    ref = reference if reference is not None else IterationModel(max_iterations=max_iterations)
    steep_start = ref.effort_steepening_start
    steep = ref.effort_steepening

    def predict(x, offset, slope, midpoint, scale):
        m, s = x
        margin = s - (offset + slope * m + np.maximum(0.0, m - steep_start) * steep)
        z = np.clip((margin - midpoint) / max(scale, 1e-3), -60, 60)
        frac = 1.0 / (1.0 + np.exp(z))
        return 1.0 + (max_iterations - 1) * frac

    p0 = (ref.effort_offset, ref.effort_slope, ref.effort_midpoint, ref.effort_scale)
    params, _ = curve_fit(
        predict,
        (ms, ss),
        means,
        p0=p0,
        sigma=1.0 / np.sqrt(weights),
        maxfev=20_000,
        bounds=((-40.0, 0.1, -10.0, 0.3), (20.0, 4.0, 20.0, 15.0)),
    )
    offset, slope, midpoint, scale = (float(v) for v in params)
    fitted = IterationModel(
        max_iterations=max_iterations,
        effort_offset=offset,
        effort_slope=slope,
        effort_midpoint=midpoint,
        effort_scale=scale,
        effort_steepening=steep,
        effort_steepening_start=steep_start,
        spike_probability=ref.spike_probability,
        jitter_scale=ref.jitter_scale,
        success_offset=ref.success_offset,
        success_slope=ref.success_slope,
    )
    residuals = predict((ms, ss), *params) - means
    rmse = float(np.sqrt(np.average(residuals**2, weights=weights)))
    return CalibrationResult(model=fitted, rmse=rmse, num_bins=int(ms.size))


def log_chain_iterations(
    grid,
    mcs_values,
    snr_values,
    trials_per_point: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collect (mcs, snr, L) samples from the functional uplink chain.

    Slow (it runs the real turbo decoder); intended for small grids and
    modest trial counts — the calibration loop, not the simulation loop.
    """
    from repro.lte.subframe import UplinkGrant
    from repro.phy.chain import UplinkReceiver, UplinkTransmitter
    from repro.phy.channel import AwgnChannel

    logged_mcs, logged_snr, logged_l = [], [], []
    tx = UplinkTransmitter(grid=grid)
    rx = UplinkReceiver(grid=grid)
    for mcs in mcs_values:
        grant = UplinkGrant(mcs=mcs, num_prbs=grid.num_prbs, num_antennas=1)
        for snr in snr_values:
            for trial in range(trials_per_point):
                enc = tx.encode(grant, subframe_index=trial, rng=rng)
                channel = AwgnChannel(snr_db=snr, num_antennas=1, rng=rng)
                obs = channel.apply(enc.waveform)
                power = float(np.mean(np.abs(enc.waveform) ** 2))
                result = rx.decode(
                    obs, grant, channel.noise_variance(power), subframe_index=trial
                )
                for l in result.iterations:
                    logged_mcs.append(mcs)
                    logged_snr.append(snr)
                    logged_l.append(l)
    return np.array(logged_mcs), np.array(logged_snr), np.array(logged_l)
