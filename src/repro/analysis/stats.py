"""Distribution statistics used across the experiment suite."""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np


def empirical_cdf(samples: np.ndarray, points: np.ndarray) -> np.ndarray:
    """P(X <= x) evaluated at each ``points`` entry."""
    samples = np.sort(np.asarray(samples, dtype=np.float64))
    points = np.asarray(points, dtype=np.float64)
    if samples.size == 0:
        return np.zeros_like(points)
    return np.searchsorted(samples, points, side="right") / samples.size


def tail_fraction(samples: np.ndarray, threshold: float) -> float:
    """Fraction of samples strictly above ``threshold``."""
    samples = np.asarray(samples)
    if samples.size == 0:
        return 0.0
    return float(np.mean(samples > threshold))


def summarize(samples: np.ndarray) -> Dict[str, float]:
    """Mean / percentiles summary for a latency-style sample set."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return {k: math.nan for k in ("mean", "p50", "p90", "p99", "p999", "max")}
    return {
        "mean": float(samples.mean()),
        "p50": float(np.percentile(samples, 50)),
        "p90": float(np.percentile(samples, 90)),
        "p99": float(np.percentile(samples, 99)),
        "p999": float(np.percentile(samples, 99.9)),
        "max": float(samples.max()),
    }


def binomial_confidence_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a miss-rate estimate.

    Deadline-miss rates in the interesting regime are 1e-2 to 1e-4, so
    naive normal intervals misbehave; Wilson keeps the bounds inside
    [0, 1] and is accurate at small counts.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    p = successes / trials
    denom = 1.0 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def geometric_mean_ratio(numerators: np.ndarray, denominators: np.ndarray) -> float:
    """Geometric mean of pairwise ratios; ignores zero denominators."""
    numerators = np.asarray(numerators, dtype=np.float64)
    denominators = np.asarray(denominators, dtype=np.float64)
    mask = (denominators > 0) & (numerators > 0)
    if not mask.any():
        return math.nan
    ratios = numerators[mask] / denominators[mask]
    return float(np.exp(np.mean(np.log(ratios))))
