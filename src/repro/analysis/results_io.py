"""Scheduler-result persistence: export/import per-subframe records.

``SchedulerResult`` objects are the unit of analysis; exporting them as
CSV lets operators post-process runs with external tooling (the paper's
implementation framework, Fig. 13, promises exactly this profiling
role: "deadline-miss rate, load, memory usage ... help operators design
and provision compute resources").
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Union

from repro.sched.base import CRanConfig, SchedulerResult, SubframeRecord

PathLike = Union[str, Path]

_COLUMNS = (
    "bs_id",
    "index",
    "mcs",
    "load",
    "arrival_us",
    "deadline_us",
    "start_us",
    "finish_us",
    "missed",
    "dropped",
    "drop_stage",
    "core_id",
    "queue_delay_us",
    "cache_penalty_us",
    "gap_us",
    "iterations",
    "crc_pass",
    "migrated_subtasks",
)


def save_result_csv(path: PathLike, result: SchedulerResult) -> None:
    """Write one row per subframe record.

    Migration batches are flattened to their subtask count; the scheduler
    name and the full :class:`CRanConfig` (as JSON) are recorded in a
    comment-style first line.  ``rtt_us`` stays as its own header field
    for human readability and backward compatibility.
    """
    config_json = json.dumps(dataclasses.asdict(result.config), sort_keys=True)
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["# scheduler", result.scheduler_name,
             "rtt_us", result.config.transport_latency_us,
             "config", config_json]
        )
        writer.writerow(_COLUMNS)
        for r in result.records:
            writer.writerow(
                [
                    r.bs_id,
                    r.index,
                    r.mcs,
                    f"{r.load:.6f}",
                    f"{r.arrival_us:.3f}",
                    f"{r.deadline_us:.3f}",
                    f"{r.start_us:.3f}",
                    f"{r.finish_us:.3f}",
                    int(r.missed),
                    int(r.dropped),
                    r.drop_stage or "",
                    r.core_id,
                    f"{r.queue_delay_us:.3f}",
                    f"{r.cache_penalty_us:.3f}",
                    f"{r.gap_us:.3f}",
                    "/".join(str(i) for i in r.iterations),
                    int(r.crc_pass),
                    r.migrated_subtasks,
                ]
            )


def load_result_csv(path: PathLike) -> SchedulerResult:
    """Reload a result written by :func:`save_result_csv`.

    The full run config round-trips via the JSON header field (files
    written before that field carried only ``rtt_us``; loading them
    falls back to a default config at that latency).  Migration *batch*
    details are not round-tripped — only their per-record subtask
    totals, restored via ``SubframeRecord.migrated_override`` so
    ``migrated_subtasks`` survives the round trip.
    """
    with open(Path(path), newline="") as handle:
        reader = csv.reader(handle)
        meta = next(reader, None)
        if not meta or meta[0] != "# scheduler":
            raise ValueError(f"{path} is not a scheduler-result CSV")
        scheduler_name = meta[1]
        rtt_us = float(meta[3])
        config = CRanConfig(transport_latency_us=rtt_us)
        if len(meta) >= 6 and meta[4] == "config":
            config = CRanConfig(**json.loads(meta[5]))
        header = next(reader, None)
        if tuple(header or ()) != _COLUMNS:
            raise ValueError(f"{path} has an unexpected column layout")
        records = []
        for row in reader:
            if not row:
                continue
            values = dict(zip(_COLUMNS, row))
            record = SubframeRecord(
                bs_id=int(values["bs_id"]),
                index=int(values["index"]),
                mcs=int(values["mcs"]),
                load=float(values["load"]),
                arrival_us=float(values["arrival_us"]),
                deadline_us=float(values["deadline_us"]),
                start_us=float(values["start_us"]),
                finish_us=float(values["finish_us"]),
                missed=bool(int(values["missed"])),
                dropped=bool(int(values["dropped"])),
                drop_stage=values["drop_stage"] or None,
                core_id=int(values["core_id"]),
                queue_delay_us=float(values["queue_delay_us"]),
                cache_penalty_us=float(values["cache_penalty_us"]),
                gap_us=float(values["gap_us"]),
                iterations=tuple(
                    int(i) for i in values["iterations"].split("/") if i
                ),
                crc_pass=bool(int(values["crc_pass"])),
                migrated_override=int(values["migrated_subtasks"]),
            )
            records.append(record)
    return SchedulerResult(scheduler_name, config, records)
