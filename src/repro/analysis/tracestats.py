"""Trace-derived metrics: per-core utilization, gap CDFs, verdict counts.

These aggregators consume the typed event streams the schedulers emit
(:mod:`repro.obs`) — either live :class:`~repro.obs.trace.RunTrace`
objects or traces reloaded from a JSONL export — and recompute the
paper's timeline-level statistics *from the trace alone*:

* :func:`core_busy_us` / :func:`core_utilization` — per-core occupancy
  from busy spans (``task`` + ``migration_executed``), the numbers the
  consistency tests hold equal to ``SchedulerResult.core_busy_us``;
* :func:`gap_samples` / :func:`gap_cdf` / :func:`gap_histogram` —
  Fig. 16-style idle-gap distributions straight from ``gap`` events;
* :func:`deadline_miss_count` — the run's miss count, reproduced by
  summing ``deadline`` verdict events;
* :func:`find_overlaps` — sanity check that no core executes two busy
  spans at once (the invariant the Chrome export relies on).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.obs.events import (
    BUSY_KINDS,
    DEADLINE,
    GAP,
    MIGRATION_EXECUTED,
    MIGRATION_PLANNED,
    MIGRATION_RETURNED,
    TraceEvent,
)
from repro.obs.trace import RunTrace

#: Tolerance for span-overlap detection: well below one nanosecond of
#: virtual time, far under any real task duration.
_OVERLAP_EPS_US = 1e-6


def _events(run: "RunTrace | Iterable[TraceEvent]") -> List[TraceEvent]:
    if isinstance(run, RunTrace):
        return run.events
    return list(run)


def busy_spans(run: "RunTrace | Iterable[TraceEvent]") -> Dict[int, List[Tuple[float, float]]]:
    """Per-core ``(start, end)`` busy spans, sorted by start time."""
    spans: Dict[int, List[Tuple[float, float]]] = {}
    for event in _events(run):
        if event.kind in BUSY_KINDS:
            spans.setdefault(event.core, []).append((event.ts_us, event.end_us))
    for core_spans in spans.values():
        core_spans.sort()
    return spans


def core_busy_us(run: "RunTrace | Iterable[TraceEvent]") -> Dict[int, float]:
    """Total busy microseconds per core, summed over busy spans."""
    totals: Dict[int, float] = {}
    for event in _events(run):
        if event.kind in BUSY_KINDS:
            totals[event.core] = totals.get(event.core, 0.0) + event.dur_us
    return totals


def core_utilization(
    run: "RunTrace | Iterable[TraceEvent]",
    horizon_us: float = 0.0,
) -> Dict[int, float]:
    """Busy fraction per core over ``horizon_us``.

    With no horizon given, the end of the last event in the trace is
    used — the natural "run length" of a drained simulation.
    """
    events = _events(run)
    if horizon_us <= 0:
        horizon_us = max((e.end_us for e in events), default=0.0)
    busy = core_busy_us(events)
    if horizon_us <= 0:
        return {core: 0.0 for core in sorted(busy)}
    return {core: busy[core] / horizon_us for core in sorted(busy)}


def find_overlaps(
    run: "RunTrace | Iterable[TraceEvent]",
) -> List[Tuple[int, float, float]]:
    """Busy-span overlap violations as ``(core, end_a, start_b)`` triples.

    An empty list certifies that every core's busy timeline is a valid
    single-worker schedule — the invariant that makes the Chrome
    per-core tracks trustworthy.
    """
    violations: List[Tuple[int, float, float]] = []
    for core, spans in busy_spans(run).items():
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            if next_start < prev_end - _OVERLAP_EPS_US:
                violations.append((core, prev_end, next_start))
    return violations


def deadline_miss_count(run: "RunTrace | Iterable[TraceEvent]") -> int:
    """Misses-or-drops in the run, from ``deadline`` verdict events."""
    return sum(
        1
        for event in _events(run)
        if event.kind == DEADLINE and bool(event.args.get("missed"))
    )


def deadline_verdicts(run: "RunTrace | Iterable[TraceEvent]") -> Tuple[int, int]:
    """``(hits, misses)`` over every subframe verdict in the run."""
    hits = misses = 0
    for event in _events(run):
        if event.kind != DEADLINE:
            continue
        if event.args.get("missed"):
            misses += 1
        else:
            hits += 1
    return hits, misses


def deadline_verdicts_by_class(
    run: "RunTrace | Iterable[TraceEvent]",
) -> Dict[str, Tuple[int, int]]:
    """Per-service-class ``(hits, misses)`` from verdict events.

    Verdicts without a ``service`` arg — every single-class trace ever
    emitted — count under the default ``embb`` class, so the totals
    always agree with :func:`deadline_verdicts`.
    """
    counts: Dict[str, List[int]] = {}
    for event in _events(run):
        if event.kind != DEADLINE:
            continue
        service = str(event.args.get("service", "embb"))
        pair = counts.setdefault(service, [0, 0])
        pair[1 if event.args.get("missed") else 0] += 1
    return {s: (pair[0], pair[1]) for s, pair in sorted(counts.items())}


# -- migration flows (Perfetto arrows, reconstructed) --------------------------

def migration_flows(
    run: "RunTrace | Iterable[TraceEvent]",
) -> Dict[int, Dict[str, TraceEvent]]:
    """Per-batch ``{"planned", "executed", "returned"}`` event triples.

    Reassembles the same linkage the Chrome exporter renders as flow
    arrows, keyed by the batch ids the schedulers stamp into event args
    (``batches`` on the planned event, ``batch`` on the executed and
    returned ones).  Batches missing a stage — e.g. a trace truncated
    mid-run — simply lack that key in their dict.
    """
    flows: Dict[int, Dict[str, TraceEvent]] = {}
    for event in _events(run):
        if event.kind == MIGRATION_PLANNED:
            for batch in event.args.get("batches", ()):
                flows.setdefault(int(batch), {})["planned"] = event
        elif event.kind == MIGRATION_EXECUTED:
            batch = event.args.get("batch")
            if isinstance(batch, int):
                flows.setdefault(batch, {})["executed"] = event
        elif event.kind == MIGRATION_RETURNED:
            batch = event.args.get("batch")
            if isinstance(batch, int):
                flows.setdefault(batch, {})["returned"] = event
    return flows


# -- gap distributions (Fig. 16 left panel) -----------------------------------

def gap_samples(
    run: "RunTrace | Iterable[TraceEvent]",
    usable_only: bool = False,
) -> np.ndarray:
    """Idle-gap durations (us); ``usable_only`` drops framework-reserved
    gaps after slack-check drops (paper sec. 4.1)."""
    values = [
        event.dur_us
        for event in _events(run)
        if event.kind == GAP
        and (not usable_only or bool(event.args.get("usable", True)))
    ]
    return np.asarray(values, dtype=np.float64)


def gap_cdf(
    run: "RunTrace | Iterable[TraceEvent]",
    usable_only: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of the idle gaps: ``(sorted_gaps_us, P(gap <= x))``."""
    samples = np.sort(gap_samples(run, usable_only=usable_only))
    if samples.size == 0:
        return samples, samples
    probabilities = np.arange(1, samples.size + 1, dtype=np.float64) / samples.size
    return samples, probabilities


def gap_histogram(
    run: "RunTrace | Iterable[TraceEvent]",
    bin_edges_us: Sequence[float],
    usable_only: bool = False,
) -> np.ndarray:
    """Gap counts per ``bin_edges_us`` bucket (numpy histogram semantics)."""
    samples = gap_samples(run, usable_only=usable_only)
    counts, _ = np.histogram(samples, bins=np.asarray(bin_edges_us, dtype=np.float64))
    return counts


def gap_summary(
    run: "RunTrace | Iterable[TraceEvent]",
    threshold_us: float = 500.0,
) -> Dict[str, float]:
    """Fig. 16-style roll-up: median gap and the tail beyond ``threshold_us``."""
    samples = gap_samples(run)
    if samples.size == 0:
        return {"count": 0.0, "median_us": math.nan, "tail_fraction": math.nan}
    return {
        "count": float(samples.size),
        "median_us": float(np.median(samples)),
        "tail_fraction": float(np.mean(samples > threshold_us)),
    }
