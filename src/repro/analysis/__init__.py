"""Analysis utilities: distribution statistics and ASCII reporting.

Every experiment driver renders its output through
:mod:`repro.analysis.report` so the regenerated tables/series look the
same across the suite and are easy to diff against EXPERIMENTS.md.
"""

from repro.analysis.fleet import fleet_summary, node_summary
from repro.analysis.report import Table, format_series, render_cdf
from repro.analysis.stats import (
    binomial_confidence_interval,
    empirical_cdf,
    summarize,
    tail_fraction,
)
from repro.analysis.tracestats import (
    busy_spans,
    core_busy_us,
    core_utilization,
    deadline_miss_count,
    deadline_verdicts,
    find_overlaps,
    gap_cdf,
    gap_histogram,
    gap_samples,
    gap_summary,
)

__all__ = [
    "Table",
    "format_series",
    "render_cdf",
    "binomial_confidence_interval",
    "busy_spans",
    "core_busy_us",
    "core_utilization",
    "deadline_miss_count",
    "deadline_verdicts",
    "empirical_cdf",
    "find_overlaps",
    "fleet_summary",
    "node_summary",
    "gap_cdf",
    "gap_histogram",
    "gap_samples",
    "gap_summary",
    "summarize",
    "tail_fraction",
]
