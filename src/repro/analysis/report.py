"""ASCII rendering for experiment output.

The benchmark harness regenerates the paper's tables and figure series
as text: a :class:`Table` per table-like artifact, and CDF/series
renderers for the figures.  Keeping the formatting in one module makes
every experiment's output uniform and greppable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np


class Table:
    """A simple fixed-width text table."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.headers = list(headers)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} columns, got {len(row)}")
        self.rows.append(row)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if value == 0:
                return "0"
            if abs(value) < 1e-2 or abs(value) >= 1e6:
                return f"{value:.2e}"
            return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
        return str(value)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_series(xs: Sequence[float], ys: Sequence[float], x_label: str, y_label: str) -> str:
    """Two-column series, one (x, y) pair per line."""
    table = Table([x_label, y_label])
    for x, y in zip(xs, ys):
        table.add_row([x, y])
    return table.render()


def render_cdf(
    samples: np.ndarray,
    label: str,
    points: Optional[np.ndarray] = None,
    num_points: int = 11,
) -> str:
    """Textual CDF of a sample set at evenly spaced quantile points."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return f"{label}: (no samples)"
    if points is None:
        points = np.linspace(samples.min(), samples.max(), num_points)
    sorted_samples = np.sort(samples)
    cdf = np.searchsorted(sorted_samples, points, side="right") / samples.size
    table = Table([label, "CDF"])
    for x, p in zip(points, cdf):
        table.add_row([float(x), float(p)])
    return table.render()


def render_histogram(samples: np.ndarray, label: str, bins: int = 10, width: int = 40) -> str:
    """ASCII histogram (bar chart) of a sample set."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return f"{label}: (no samples)"
    counts, edges = np.histogram(samples, bins=bins)
    peak = counts.max() or 1
    lines = [label]
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  [{lo:10.1f}, {hi:10.1f}) {count:8d} {bar}")
    return "\n".join(lines)
