"""Fleet-level rollups: fold per-node scheduler runs into one view.

The fleet sweeps (:mod:`repro.experiments.ext_fleet`) run an
independent scheduler instance per compute node and need the node
outcomes folded back into fleet answers: what fraction of all
subframes missed, how hot the provisioned nodes ran, and how many
cores the placement bought.  Everything here is JSON-native — these
dicts travel through :class:`~repro.experiments.base.WorkUnit` results
and the on-disk cache unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sched.base import SchedulerResult


def node_summary(
    result: SchedulerResult, cells: Sequence[int], horizon_us: float
) -> Dict[str, object]:
    """One node's scheduling outcome, keyed for the fleet rollup.

    ``cells`` are the *global* basestation ids hosted on the node (the
    scheduler itself saw node-local ids).  Utilization is the mean/max
    per-core busy fraction over the common ``horizon_us`` so nodes are
    comparable regardless of when their last subframe finished.
    """
    if horizon_us <= 0:
        raise ValueError("horizon_us must be positive")
    util = result.utilization(horizon_us)
    values = [util[core] for core in sorted(util)]
    return {
        "cells": [int(c) for c in cells],
        "subframes": len(result.records),
        "misses": result.miss_count(),
        "miss_rate": result.miss_rate(),
        "cores": len(values),
        "util_mean": sum(values) / len(values) if values else 0.0,
        "util_max": max(values) if values else 0.0,
    }


def fleet_summary(
    nodes: Sequence[Dict[str, object]], cores_per_node: int
) -> Dict[str, object]:
    """Aggregate per-node summaries into the fleet-level rollup.

    The fleet miss rate weights every subframe equally (it is the
    miss-count ratio over the whole fleet, not a mean of per-node
    rates — nodes host different cell counts).
    """
    if cores_per_node < 1:
        raise ValueError("cores_per_node must be >= 1")
    subframes = sum(int(n["subframes"]) for n in nodes)
    misses = sum(int(n["misses"]) for n in nodes)
    util_means: List[float] = [float(n["util_mean"]) for n in nodes]
    util_maxes: List[float] = [float(n["util_max"]) for n in nodes]
    return {
        "node_count": len(nodes),
        "cores_total": len(nodes) * cores_per_node,
        "subframes": subframes,
        "misses": misses,
        "miss_rate": misses / subframes if subframes else 0.0,
        "util_mean": sum(util_means) / len(util_means) if util_means else 0.0,
        "util_max": max(util_maxes) if util_maxes else 0.0,
    }
