"""Event queue and virtual clock.

A deliberately small engine: events are ``(time, priority, seq)``-ordered
callbacks.  Ties at the same timestamp are broken first by an explicit
priority (so e.g. a core-release event can be guaranteed to run before a
same-instant arrival) and then by insertion order, which makes runs fully
deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; comparison order defines execution order."""

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class Simulator:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    def schedule(self, time: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``.

        Scheduling in the past is a logic error and raises immediately —
        silently clamping would hide causality bugs in schedulers.
        """
        if time < self._now - 1e-9:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        self._seq += 1
        event = Event(time=max(time, self._now), priority=priority, seq=self._seq, callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        return self.schedule(self._now + delay, callback, priority)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or virtual ``until`` passes.

        Returns the final virtual time.  Re-entrant calls are rejected —
        callbacks must schedule, not run, further work.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not re-entrant")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
