"""Event queue and virtual clock.

A deliberately small engine: events are ``(time, priority, seq)``-ordered
callbacks.  Ties at the same timestamp are broken first by an explicit
priority (so e.g. a core-release event can be guaranteed to run before a
same-instant arrival) and then by insertion order, which makes runs fully
deterministic.

The heap stores plain ``(time, priority, seq, event)`` tuples, so every
sift comparison is a C-level tuple compare — no Python ``__lt__``
dispatch on the hot path (``seq`` is unique, so the trailing event
object is never compared).  :class:`Event` itself is a ``__slots__``
handle kept for scheduling and cancellation.

``run`` drains same-instant *tie-groups* in one pass: all entries
sharing the head timestamp are popped together and executed in key
order, with a single until/purge check per group instead of per event.
A callback may schedule new work at the current instant; such entries
are merged into the executing group at their proper key position, so
batching is invisible to the schedule's semantics.

Cancellation is lazy — ``Event.cancel`` only flags the entry — but the
heap is compacted whenever flagged entries outnumber live ones (beyond a
small floor), so long runs that cancel aggressively stay bounded by the
live-event population instead of leaking every dead entry until drain.
While ``run`` is draining, compaction is deferred to the next tie-group
boundary, amortizing one rebuild over every cancellation the group
caused.  A live-event counter is maintained incrementally, making
``pending()`` O(1) instead of an O(n) scan.
"""

from __future__ import annotations

import heapq
import math
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

#: Relative component of the schedule-in-the-past tolerance.  Float
#: microsecond timestamps accumulate rounding of a few ulps over long
#: horizons (ulp(1e9 us) ~ 1.2e-7), so the guard scales with ``now``
#: while staying far below the engine's microsecond resolution.
RELATIVE_EPSILON = 1e-12
#: Absolute floor of the tolerance (the original fixed guard).
ABSOLUTE_EPSILON = 1e-9

#: Compaction floor: never rebuild the heap over fewer dead entries.
_MIN_PURGE = 16

#: Heap entry: ``(time, priority, seq, event)``.
_Entry = Tuple[float, int, int, "Event"]


class Event:
    """A scheduled callback; comparison order defines execution order."""

    __slots__ = ("time", "priority", "seq", "callback", "cancelled",
                 "_owner", "_queued", "_in_batch")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
        owner: Optional["Simulator"] = None,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        #: Owning simulator, so ``cancel`` can keep its live count exact.
        self._owner = owner
        #: Whether the entry still sits in the owner's heap.
        self._queued = owner is not None
        #: Whether the entry sits in the tie-group ``run`` is draining.
        self._in_batch = False

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, cancelled={self.cancelled!r})"
        )

    def _key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._key() < other._key()

    def __le__(self, other: "Event") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "Event") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "Event") -> bool:
        return self._key() >= other._key()

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped.

        Bookkeeping is inlined rather than delegated to the owner: the
        cancel path is hot in timeout-churn workloads.  A still-queued
        entry becomes a dead heap entry awaiting compaction; an entry in
        the tie-group ``run`` is currently draining is already out of
        the heap, so only the live count drops and the drain loop skips
        it.  Compaction triggers once dead entries outnumber live ones
        (beyond the ``_MIN_PURGE`` floor), deferred to the next group
        boundary while ``run`` is active.
        """
        if self.cancelled:
            return
        self.cancelled = True
        owner = self._owner
        if owner is None:
            return
        if self._queued:
            owner._live -= 1
            queue = owner._queue
            if queue[-1][3] is self:
                # Tail entry: removing the last list element never
                # violates the heap invariant, so the common
                # schedule-then-cancel timeout shape costs O(1) and
                # leaves nothing to compact.
                queue.pop()
                self._queued = False
                return
            dead = owner._dead = owner._dead + 1
            if dead >= _MIN_PURGE and dead * 2 > len(queue):
                if owner._running:
                    owner._purge_pending = True
                else:
                    owner._purge()
        elif self._in_batch:
            owner._live -= 1


class Simulator:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._queue: List[_Entry] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._live = 0  # non-cancelled entries in the heap or current batch
        self._dead = 0  # cancelled entries awaiting compaction
        self._executed = 0
        self._purges = 0
        self._purge_pending = False
        self._max_heap = 0
        self._batch_pops = 0

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    def schedule(self, time: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``.

        Scheduling in the past is a logic error and raises immediately —
        silently clamping would hide causality bugs in schedulers.  The
        tolerance is relative to ``now`` (plus a tiny absolute floor) so
        same-instant re-schedules survive the float rounding that
        millions of accumulated microseconds produce.
        """
        now = self._now
        if time < now:
            if time < now - (ABSOLUTE_EPSILON + RELATIVE_EPSILON * abs(now)):
                raise ValueError(f"cannot schedule at {time} before now={now}")
            time = now
        seq = self._seq = self._seq + 1
        # Inline Event construction: schedule is the single hottest
        # entry point, and bypassing __init__ saves a Python call per
        # event.  Keep the slot stores in sync with Event.__init__.
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        event._owner = self
        event._queued = True
        event._in_batch = False
        queue = self._queue
        heappush(queue, (time, priority, seq, event))
        self._live += 1
        if len(queue) > self._max_heap:
            self._max_heap = len(queue)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` after ``delay`` microseconds.

        A full inline of :meth:`schedule` (minus the past-check, which a
        non-negative delay cannot trip: ``now + delay >= now`` under
        IEEE rounding): callbacks re-arming themselves make this the
        other hot entry point, and the delegation frame is measurable.
        Keep the slot stores in sync with Event.__init__.
        """
        if delay < 0:
            raise ValueError("delay must be >= 0")
        time = self._now + delay
        seq = self._seq = self._seq + 1
        event = Event.__new__(Event)
        event.time = time
        event.priority = priority
        event.seq = seq
        event.callback = callback
        event.cancelled = False
        event._owner = self
        event._queued = True
        event._in_batch = False
        queue = self._queue
        heappush(queue, (time, priority, seq, event))
        self._live += 1
        if len(queue) > self._max_heap:
            self._max_heap = len(queue)
        return event

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or virtual ``until`` passes.

        Returns the final virtual time.  Re-entrant calls are rejected —
        callbacks must schedule, not run, further work.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not re-entrant")
        self._running = True
        queue = self._queue
        batch: List[_Entry] = []
        # Float sentinel so the drain loop pays one compare per
        # iteration instead of a None-check plus a compare.
        horizon = math.inf if until is None else until
        try:
            while queue:
                if self._purge_pending:
                    self._maybe_purge()
                head_time = queue[0][0]
                if head_time > horizon:
                    # Unreachable for an infinite horizon, so this is
                    # always the caller's finite ``until``.
                    self._now = horizon
                    break
                entry = heappop(queue)
                event = entry[3]
                event._queued = False
                if event.cancelled:
                    self._dead -= 1
                    continue
                if not queue or queue[0][0] != head_time:
                    # Fast path: the instant holds a single live event, so
                    # no batch bookkeeping is needed.  Anything its
                    # callback schedules lands in the heap and is seen by
                    # the next outer iteration in key order.
                    self._now = head_time
                    self._live -= 1
                    self._executed += 1
                    event.callback()
                    continue
                # Pop the rest of the tie-group at ``head_time`` in one
                # pass: successive heappops yield it already key-sorted,
                # and dead entries are dropped as they surface.
                del batch[:]
                event._in_batch = True
                batch.append(entry)
                while queue and queue[0][0] == head_time:
                    entry = heappop(queue)
                    event = entry[3]
                    event._queued = False
                    if event.cancelled:
                        self._dead -= 1
                        continue
                    event._in_batch = True
                    batch.append(entry)
                self._now = head_time
                if len(batch) > 1:
                    self._batch_pops += 1
                index = 0
                try:
                    while index < len(batch):
                        entry = batch[index]
                        event = entry[3]
                        # A callback earlier in this group may have
                        # scheduled same-instant work that sorts before
                        # the next batch entry; merge it in key order.
                        while queue and queue[0] < entry:
                            interloper = heappop(queue)[3]
                            interloper._queued = False
                            if interloper.cancelled:
                                self._dead -= 1
                                continue
                            self._live -= 1
                            self._executed += 1
                            interloper.callback()
                        index += 1
                        event._in_batch = False
                        if event.cancelled:
                            # Cancelled mid-drain: counters were already
                            # settled by ``_on_batch_cancel``.
                            continue
                        self._live -= 1
                        self._executed += 1
                        event.callback()
                except BaseException:
                    # A callback raised mid-group: return the unexecuted
                    # tail to the heap so a later run() still sees it.
                    self._repatriate(batch, index)
                    raise
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
            if self._purge_pending:
                self._maybe_purge()
        return self._now

    def pending(self) -> int:
        """Number of live events still queued (O(1))."""
        return self._live

    def stats(self) -> Dict[str, int]:
        """Engine counters for telemetry/trace metadata."""
        return {
            "executed": self._executed,
            "live": self._live,
            "cancelled_pending": self._dead,
            "heap_size": len(self._queue),
            "max_heap_size": self._max_heap,
            "purges": self._purges,
            "batch_pops": self._batch_pops,
        }

    # -- cancellation bookkeeping --------------------------------------------

    def _maybe_purge(self) -> None:
        """Deferred compaction: re-check the threshold at a safe point."""
        self._purge_pending = False
        if self._dead >= _MIN_PURGE and self._dead * 2 > len(self._queue):
            self._purge()

    def _purge(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors.

        In place, so ``run``'s local alias of the queue stays valid.
        """
        queue = self._queue
        live = []
        for entry in queue:
            if entry[3].cancelled:
                entry[3]._queued = False
            else:
                live.append(entry)
        queue[:] = live
        heapq.heapify(queue)
        self._dead = 0
        self._purges += 1

    def _repatriate(self, batch: List[_Entry], start: int) -> None:
        """Re-queue a tie-group's unexecuted tail after an exception."""
        for entry in batch[start:]:
            event = entry[3]
            event._in_batch = False
            event._queued = True
            heappush(self._queue, entry)
            if event.cancelled:
                # Cancelled while in the batch: it re-enters the heap as
                # a dead entry awaiting compaction.
                self._dead += 1
