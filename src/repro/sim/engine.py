"""Event queue and virtual clock.

A deliberately small engine: events are ``(time, priority, seq)``-ordered
callbacks.  Ties at the same timestamp are broken first by an explicit
priority (so e.g. a core-release event can be guaranteed to run before a
same-instant arrival) and then by insertion order, which makes runs fully
deterministic.

Cancellation is lazy — ``Event.cancel`` only flags the entry — but the
heap is compacted whenever flagged entries outnumber live ones (beyond a
small floor), so long runs that cancel aggressively stay bounded by the
live-event population instead of leaking every dead entry until drain.
A live-event counter is maintained incrementally, making ``pending()``
O(1) instead of an O(n) scan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Relative component of the schedule-in-the-past tolerance.  Float
#: microsecond timestamps accumulate rounding of a few ulps over long
#: horizons (ulp(1e9 us) ~ 1.2e-7), so the guard scales with ``now``
#: while staying far below the engine's microsecond resolution.
RELATIVE_EPSILON = 1e-12
#: Absolute floor of the tolerance (the original fixed guard).
ABSOLUTE_EPSILON = 1e-9

#: Compaction floor: never rebuild the heap over fewer dead entries.
_MIN_PURGE = 16


@dataclass(order=True)
class Event:
    """A scheduled callback; comparison order defines execution order."""

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Owning simulator, so ``cancel`` can keep its live count exact.
    _owner: Optional["Simulator"] = field(default=None, compare=False, repr=False)
    #: Whether the entry still sits in the owner's heap.
    _queued: bool = field(default=False, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None and self._queued:
            self._owner._on_cancel()


class Simulator:
    """Minimal deterministic discrete-event simulator."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._live = 0  # non-cancelled entries in the heap
        self._dead = 0  # cancelled entries awaiting compaction
        self._executed = 0
        self._purges = 0
        self._max_heap = 0

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    def schedule(self, time: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``.

        Scheduling in the past is a logic error and raises immediately —
        silently clamping would hide causality bugs in schedulers.  The
        tolerance is relative to ``now`` (plus a tiny absolute floor) so
        same-instant re-schedules survive the float rounding that
        millions of accumulated microseconds produce.
        """
        if time < self._now - (ABSOLUTE_EPSILON + RELATIVE_EPSILON * abs(self._now)):
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        self._seq += 1
        event = Event(
            time=max(time, self._now), priority=priority, seq=self._seq, callback=callback
        )
        event._owner = self
        event._queued = True
        heapq.heappush(self._queue, event)
        self._live += 1
        if len(self._queue) > self._max_heap:
            self._max_heap = len(self._queue)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None], priority: int = 0) -> Event:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        return self.schedule(self._now + delay, callback, priority)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or virtual ``until`` passes.

        Returns the final virtual time.  Re-entrant calls are rejected —
        callbacks must schedule, not run, further work.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not re-entrant")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                event._queued = False
                if event.cancelled:
                    self._dead -= 1
                    continue
                self._live -= 1
                self._executed += 1
                self._now = event.time
                event.callback()
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of live events still queued (O(1))."""
        return self._live

    def stats(self) -> Dict[str, int]:
        """Engine counters for telemetry/trace metadata."""
        return {
            "executed": self._executed,
            "live": self._live,
            "cancelled_pending": self._dead,
            "heap_size": len(self._queue),
            "max_heap_size": self._max_heap,
            "purges": self._purges,
        }

    # -- cancellation bookkeeping --------------------------------------------

    def _on_cancel(self) -> None:
        """A queued event was cancelled; compact once dead entries win."""
        self._live -= 1
        self._dead += 1
        if self._dead >= _MIN_PURGE and self._dead * 2 > len(self._queue):
            self._purge()

    def _purge(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors."""
        live: List[Event] = []
        for event in self._queue:
            if event.cancelled:
                event._queued = False
            else:
                live.append(event)
        heapq.heapify(live)
        self._queue = live
        self._dead = 0
        self._purges += 1
