"""Named, independently seeded RNG streams.

Every stochastic component of the simulation (iteration draws, platform
noise, transport jitter, cache penalties, ...) pulls from its own stream
so that changing one component's consumption pattern does not perturb
the others — a standard variance-reduction practice that also makes
scheduler comparisons paired: partitioned, global, and RT-OPEX all see
the *same* subframe workload when run from the same seed.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """A family of :class:`numpy.random.Generator` keyed by name."""

    def __init__(self, seed: int = 2016):
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        if name not in self._streams:
            # zlib.crc32 is stable across processes, unlike builtin hash()
            # of str, which is salted and would break run reproducibility.
            key = zlib.crc32(name.encode("utf-8"))
            child_seed = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def fork(self, offset: int) -> "RngStreams":
        """A fresh family with a deterministically derived seed."""
        return RngStreams(seed=self.seed + 1_000_003 * (offset + 1))
