"""Deterministic discrete-event simulation engine.

The reproduction's substitute for the paper's pthread-pinned cores: a
microsecond-resolution virtual clock with a stable event queue.  All
scheduler behaviour (arrivals, task starts/ends, migrations, deadline
enforcement) is expressed as events; determinism comes from seeded RNG
streams (:mod:`repro.sim.rng`) and a total event order (time, priority,
sequence number).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams

__all__ = ["Event", "Simulator", "RngStreams"]
